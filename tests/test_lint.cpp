// Tests for tools/eevfs_lint: each rule family (D/L/O/H) has a known-bad
// fixture under tests/lint_fixtures/ that must produce exact rule IDs at
// exact file:line positions, a clean fixture that must produce nothing,
// and a suppression fixture proving `// eevfs-lint: allow(<rule>)` works.
//
// The fixtures live under lint_fixtures/src/<module>/ so that module
// derivation (the component after the last `src/`) behaves exactly as it
// does in the real tree.  The directory is skipped by whole-tree scans.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint.hpp"

namespace {

using eevfs::lint::Finding;
using eevfs::lint::Options;

const std::string kFixtures = LINT_FIXTURE_DIR;

std::vector<std::pair<int, std::string>> lines_and_rules(
    const std::vector<Finding>& findings) {
  std::vector<std::pair<int, std::string>> out;
  out.reserve(findings.size());
  for (const auto& f : findings) out.emplace_back(f.line, f.rule);
  return out;
}

Options doc_options() {
  Options opt;
  opt.check_docs = true;
  opt.documented_metrics =
      eevfs::lint::parse_metrics_doc(kFixtures + "/metrics_doc.md");
  return opt;
}

// ------------------------------------------------------------- plumbing

TEST(Lint, RuleCatalogueCoversAllFourFamilies) {
  std::string families;
  for (const auto& r : eevfs::lint::rule_catalogue()) {
    families += r.id[0];
  }
  for (const char f : {'D', 'L', 'O', 'H'}) {
    EXPECT_NE(families.find(f), std::string::npos) << "family " << f;
  }
}

TEST(Lint, ModuleOfFindsComponentAfterLastSrc) {
  EXPECT_EQ(eevfs::lint::module_of("src/core/cluster.cpp"), "core");
  EXPECT_EQ(eevfs::lint::module_of("/repo/src/util/rng.hpp"), "util");
  EXPECT_EQ(eevfs::lint::module_of("tests/lint_fixtures/src/sim/x.cpp"),
            "sim");
  EXPECT_EQ(eevfs::lint::module_of("tests/test_obs.cpp"), "");
  EXPECT_EQ(eevfs::lint::module_of("bench/harness.cpp"), "");
}

TEST(Lint, MetricsDocParserExtractsOnlyWellFormedNames) {
  const auto names =
      eevfs::lint::parse_metrics_doc(kFixtures + "/metrics_doc.md");
  EXPECT_EQ(names, std::set<std::string>{"ok.metric.count"});
}

TEST(Lint, UnreadableInputsThrow) {
  EXPECT_THROW(eevfs::lint::parse_metrics_doc(kFixtures + "/nope.md"),
               std::runtime_error);
  EXPECT_THROW(eevfs::lint::lint_file(kFixtures + "/nope.cpp", Options{}),
               std::runtime_error);
}

// ------------------------------------------------------- rule family D

TEST(Lint, DeterminismFixtureFiresExactRulesAndLines) {
  const auto findings = eevfs::lint::lint_file(
      kFixtures + "/src/sim/bad_determinism.cpp", Options{});
  const std::vector<std::pair<int, std::string>> expected = {
      {2, "D1"},   // #include <ctime>
      {3, "D3"},   // #include <random>
      {7, "D2"},   // unordered_map in a result-emitting file
      {8, "D1"},   // rand()
      {9, "D1"},   // srand()
      {10, "D1"},  // system_clock
      {11, "D1"},  // steady_clock
      {12, "D1"},  // std::time(nullptr)
  };
  EXPECT_EQ(lines_and_rules(findings), expected);
  for (const auto& f : findings) {
    EXPECT_EQ(f.file, kFixtures + "/src/sim/bad_determinism.cpp");
  }
}

// ------------------------------------------------------- rule family L

TEST(Lint, LayeringFixtureRejectsUpwardAndUnqualifiedIncludes) {
  const auto findings = eevfs::lint::lint_file(
      kFixtures + "/src/util/bad_layering.cpp", Options{});
  const std::vector<std::pair<int, std::string>> expected = {
      {4, "L1"},  // util -> core (upward)
      {5, "L1"},  // util -> sim (upward)
      {6, "L2"},  // unqualified project include
  };
  EXPECT_EQ(lines_and_rules(findings), expected);
  EXPECT_NE(findings[0].message.find("'util' must not include 'core'"),
            std::string::npos)
      << findings[0].message;
}

// ------------------------------------------------------- rule family O

TEST(Lint, ObservabilityFixtureChecksGrammarAndDocCoverage) {
  const auto findings = eevfs::lint::lint_file(
      kFixtures + "/src/core/bad_observability.cpp", doc_options());
  const std::vector<std::pair<int, std::string>> expected = {
      {3, "O1"},  // "BadName": uppercase, one segment
      {4, "O1"},  // two segments only
      {5, "O2"},  // well-formed but undocumented
  };
  EXPECT_EQ(lines_and_rules(findings), expected);
}

TEST(Lint, ObservabilityDocCheckIsOptIn) {
  Options no_doc;  // check_docs = false: O1 still applies, O2 does not
  const auto findings = eevfs::lint::lint_file(
      kFixtures + "/src/core/bad_observability.cpp", no_doc);
  const std::vector<std::pair<int, std::string>> expected = {
      {3, "O1"},
      {4, "O1"},
  };
  EXPECT_EQ(lines_and_rules(findings), expected);
}

// ------------------------------------------------------- rule family H

TEST(Lint, HeaderFixtureFiresPragmaOnceAndUsingNamespace) {
  const auto findings = eevfs::lint::lint_file(
      kFixtures + "/src/core/bad_header.hpp", Options{});
  const std::vector<std::pair<int, std::string>> expected = {
      {1, "H1"},  // missing #pragma once (reported at the top)
      {3, "H2"},  // using namespace std
  };
  EXPECT_EQ(lines_and_rules(findings), expected);
}

TEST(Lint, OwnHeaderMustBeFirstInclude) {
  const auto findings = eevfs::lint::lint_file(
      kFixtures + "/src/core/own_header.cpp", Options{});
  const std::vector<std::pair<int, std::string>> expected = {
      {2, "H3"},  // <vector> before "core/own_header.hpp"
  };
  EXPECT_EQ(lines_and_rules(findings), expected);
}

// -------------------------------------------------------- suppressions

TEST(Lint, SuppressionsWaiveFindingsOnlyForMatchingRules) {
  const auto findings = eevfs::lint::lint_file(
      kFixtures + "/src/core/suppressed.cpp", Options{});
  // Everything is allowed except the negative control: a D1 violation
  // carrying an L-family token must still be reported.
  const std::vector<std::pair<int, std::string>> expected = {
      {10, "D1"},
  };
  EXPECT_EQ(lines_and_rules(findings), expected);
}

// --------------------------------------------------------- clean files

TEST(Lint, CleanFixturesProduceZeroFindings) {
  EXPECT_TRUE(
      eevfs::lint::lint_file(kFixtures + "/src/core/clean.hpp", doc_options())
          .empty());
  EXPECT_TRUE(
      eevfs::lint::lint_file(kFixtures + "/src/core/clean.cpp", doc_options())
          .empty());
}

// ------------------------------------------------------ directory walk

TEST(Lint, DirectoryWalkIsDeterministicAndAggregatesAllFixtures) {
  std::size_t scanned = 0;
  const auto findings = eevfs::lint::lint_paths(
      {kFixtures + "/src"}, doc_options(), &scanned);
  EXPECT_EQ(scanned, 9u);  // every .cpp/.hpp fixture, not metrics_doc.md
  // 8 (D) + 3 (L) + 3 (O) + 2 (H) + 1 (H3) + 1 (suppression control).
  EXPECT_EQ(findings.size(), 18u);
  // Deterministic order: sorted by path, then line, then rule.
  auto sorted = findings;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Finding& a, const Finding& b) {
                     return std::tie(a.file, a.line, a.rule) <
                            std::tie(b.file, b.line, b.rule);
                   });
  for (std::size_t i = 0; i < findings.size(); ++i) {
    EXPECT_EQ(findings[i].file, sorted[i].file);
    EXPECT_EQ(findings[i].line, sorted[i].line);
  }
  // A second run returns the identical result.
  const auto again =
      eevfs::lint::lint_paths({kFixtures + "/src"}, doc_options(), nullptr);
  ASSERT_EQ(again.size(), findings.size());
  for (std::size_t i = 0; i < findings.size(); ++i) {
    EXPECT_EQ(again[i].file, findings[i].file);
    EXPECT_EQ(again[i].line, findings[i].line);
    EXPECT_EQ(again[i].rule, findings[i].rule);
    EXPECT_EQ(again[i].message, findings[i].message);
  }
}

}  // namespace
