// Tests for tools/eevfs_lint: each rule family (D/L/O/H/U/I/E) has a
// known-bad fixture under tests/lint_fixtures/ that must produce exact
// rule IDs at exact file:line positions, a clean fixture that must
// produce nothing, and a suppression fixture proving
// `// eevfs-lint: allow(<rule>)` works.  The cross-TU I family runs
// against a symbol index built over the fixture headers, and a final
// invariant test proves the real tree is lint-clean.
//
// The fixtures live under lint_fixtures/src/<module>/ so that module
// derivation (the component after the last `src/`) behaves exactly as it
// does in the real tree.  The directory is skipped by whole-tree scans.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint.hpp"

namespace {

using eevfs::lint::Finding;
using eevfs::lint::Options;

const std::string kFixtures = LINT_FIXTURE_DIR;

std::vector<std::pair<int, std::string>> lines_and_rules(
    const std::vector<Finding>& findings) {
  std::vector<std::pair<int, std::string>> out;
  out.reserve(findings.size());
  for (const auto& f : findings) out.emplace_back(f.line, f.rule);
  return out;
}

Options doc_options() {
  Options opt;
  opt.check_docs = true;
  opt.documented_metrics =
      eevfs::lint::parse_metrics_doc(kFixtures + "/metrics_doc.md");
  return opt;
}

// ------------------------------------------------------------- plumbing

TEST(Lint, RuleCatalogueCoversAllSevenFamilies) {
  std::string families;
  for (const auto& r : eevfs::lint::rule_catalogue()) {
    families += r.id[0];
  }
  for (const char f : {'D', 'L', 'O', 'H', 'U', 'I', 'E'}) {
    EXPECT_NE(families.find(f), std::string::npos) << "family " << f;
  }
}

TEST(Lint, LayerDepsExposesTheModuleDag) {
  const auto& deps = eevfs::lint::layer_deps();
  ASSERT_NE(deps.find("util"), deps.end());
  EXPECT_TRUE(deps.at("util").empty());
  EXPECT_EQ(deps.at("sim"), std::set<std::string>{"util"});
  EXPECT_NE(deps.at("core").count("disk"), 0u);
  EXPECT_NE(deps.at("prebud").count("core"), 0u);
  EXPECT_EQ(deps.at("fault").count("core"), 0u);  // fault sits below core
}

TEST(Lint, ModuleOfFindsComponentAfterLastSrc) {
  EXPECT_EQ(eevfs::lint::module_of("src/core/cluster.cpp"), "core");
  EXPECT_EQ(eevfs::lint::module_of("/repo/src/util/rng.hpp"), "util");
  EXPECT_EQ(eevfs::lint::module_of("tests/lint_fixtures/src/sim/x.cpp"),
            "sim");
  EXPECT_EQ(eevfs::lint::module_of("tests/test_obs.cpp"), "");
  EXPECT_EQ(eevfs::lint::module_of("bench/harness.cpp"), "");
}

TEST(Lint, MetricsDocParserExtractsOnlyWellFormedNames) {
  const auto names =
      eevfs::lint::parse_metrics_doc(kFixtures + "/metrics_doc.md");
  EXPECT_EQ(names, std::set<std::string>{"ok.metric.count"});
}

TEST(Lint, UnreadableInputsThrow) {
  EXPECT_THROW(eevfs::lint::parse_metrics_doc(kFixtures + "/nope.md"),
               std::runtime_error);
  EXPECT_THROW(eevfs::lint::lint_file(kFixtures + "/nope.cpp", Options{}),
               std::runtime_error);
}

// ------------------------------------------------------- rule family D

TEST(Lint, DeterminismFixtureFiresExactRulesAndLines) {
  const auto findings = eevfs::lint::lint_file(
      kFixtures + "/src/sim/bad_determinism.cpp", Options{});
  const std::vector<std::pair<int, std::string>> expected = {
      {2, "D1"},   // #include <ctime>
      {3, "D3"},   // #include <random>
      {7, "D2"},   // unordered_map in a result-emitting file
      {8, "D1"},   // rand()
      {9, "D1"},   // srand()
      {10, "D1"},  // system_clock
      {11, "D1"},  // steady_clock
      {12, "D1"},  // std::time(nullptr)
  };
  EXPECT_EQ(lines_and_rules(findings), expected);
  for (const auto& f : findings) {
    EXPECT_EQ(f.file, kFixtures + "/src/sim/bad_determinism.cpp");
  }
}

// ------------------------------------------------------- rule family L

TEST(Lint, LayeringFixtureRejectsUpwardAndUnqualifiedIncludes) {
  const auto findings = eevfs::lint::lint_file(
      kFixtures + "/src/util/bad_layering.cpp", Options{});
  const std::vector<std::pair<int, std::string>> expected = {
      {4, "L1"},  // util -> core (upward)
      {5, "L1"},  // util -> sim (upward)
      {6, "L2"},  // unqualified project include
  };
  EXPECT_EQ(lines_and_rules(findings), expected);
  EXPECT_NE(findings[0].message.find("'util' must not include 'core'"),
            std::string::npos)
      << findings[0].message;
}

// ------------------------------------------------------- rule family O

TEST(Lint, ObservabilityFixtureChecksGrammarAndDocCoverage) {
  const auto findings = eevfs::lint::lint_file(
      kFixtures + "/src/core/bad_observability.cpp", doc_options());
  const std::vector<std::pair<int, std::string>> expected = {
      {3, "O1"},  // "BadName": uppercase, one segment
      {4, "O1"},  // two segments only
      {5, "O2"},  // well-formed but undocumented
  };
  EXPECT_EQ(lines_and_rules(findings), expected);
}

TEST(Lint, ObservabilityDocCheckIsOptIn) {
  Options no_doc;  // check_docs = false: O1 still applies, O2 does not
  const auto findings = eevfs::lint::lint_file(
      kFixtures + "/src/core/bad_observability.cpp", no_doc);
  const std::vector<std::pair<int, std::string>> expected = {
      {3, "O1"},
      {4, "O1"},
  };
  EXPECT_EQ(lines_and_rules(findings), expected);
}

// ------------------------------------------------------- rule family H

TEST(Lint, HeaderFixtureFiresPragmaOnceAndUsingNamespace) {
  const auto findings = eevfs::lint::lint_file(
      kFixtures + "/src/core/bad_header.hpp", Options{});
  const std::vector<std::pair<int, std::string>> expected = {
      {1, "H1"},  // missing #pragma once (reported at the top)
      {3, "H2"},  // using namespace std
  };
  EXPECT_EQ(lines_and_rules(findings), expected);
}

TEST(Lint, OwnHeaderMustBeFirstInclude) {
  const auto findings = eevfs::lint::lint_file(
      kFixtures + "/src/core/own_header.cpp", Options{});
  const std::vector<std::pair<int, std::string>> expected = {
      {2, "H3"},  // <vector> before "core/own_header.hpp"
  };
  EXPECT_EQ(lines_and_rules(findings), expected);
}

// ------------------------------------------------------- rule family U

TEST(Lint, UnitsFixtureFiresSuffixTypeAndConstantRules) {
  const auto findings = eevfs::lint::lint_file(
      kFixtures + "/src/disk/bad_units.cpp", Options{});
  const std::vector<std::pair<int, std::string>> expected = {
      {8, "U2"},   // double idle_watts
      {9, "U2"},   // int64_t spin_up_ms
      {10, "U2"},  // Tick deadline_ms (mislabelled microseconds)
      {11, "U3"},  // double response_time
      {18, "U1"},  // bare 1e6 (the suppressed copy at 20 is waived)
  };
  EXPECT_EQ(lines_and_rules(findings), expected);
  EXPECT_NE(findings[0].message.find("Watts"), std::string::npos)
      << findings[0].message;
}

// ------------------------------------------------------- rule family E

TEST(Lint, EventFixtureFlagsOnlyTheDroppedHandle) {
  const auto findings = eevfs::lint::lint_file(
      kFixtures + "/src/disk/bad_event.cpp", Options{});
  // Bound, returned, (void)-discarded, and suppressed calls are all ok;
  // only the naked statement at line 11 is a drop.
  const std::vector<std::pair<int, std::string>> expected = {
      {11, "E1"},
  };
  EXPECT_EQ(lines_and_rules(findings), expected);
  EXPECT_NE(findings[0].message.find("EventHandle"), std::string::npos);
}

// ------------------------------------------------------- rule family I

eevfs::lint::SymbolIndex fixture_index() {
  return eevfs::lint::build_symbol_index(kFixtures + "/src");
}

TEST(Lint, SymbolIndexRecordsDeclarationsIncludesAndOwnership) {
  const auto idx = fixture_index();
  ASSERT_NE(idx.headers.find("util/widget.hpp"), idx.headers.end());
  EXPECT_NE(idx.headers.at("util/widget.hpp").declared.count("Widget"), 0u);
  // chain.hpp reaches widget.hpp transitively (and itself).
  const auto& chain = idx.headers.at("util/chain.hpp");
  EXPECT_NE(chain.reach.count("util/widget.hpp"), 0u);
  EXPECT_NE(chain.reach.count("util/chain.hpp"), 0u);
  // Widget is declared by exactly one header.
  ASSERT_NE(idx.unique_owner.find("Widget"), idx.unique_owner.end());
  EXPECT_EQ(idx.unique_owner.at("Widget"), "util/widget.hpp");
}

TEST(Lint, DeclaredSymbolsHandlesTheCommonDeclarationShapes) {
  const auto syms = eevfs::lint::declared_symbols({
      "#define FIXTURE_FLAG 1",
      "namespace n {",
      "struct Record { int field = 0; };",
      "enum class Color { kRed, kGreen };",
      "using Alias = Record;",
      "Record make_record(int unrelated);",
      "}  // namespace n",
  });
  for (const char* s : {"FIXTURE_FLAG", "Record", "field", "Color", "kRed",
                        "kGreen", "Alias", "make_record"}) {
    EXPECT_NE(syms.count(s), 0u) << s;
  }
  EXPECT_EQ(syms.count("unrelated"), 0u);  // parameter, not a declaration
}

TEST(Lint, IncludeFixtureFlagsDeadAndTransitiveOnlyIncludes) {
  const auto idx = fixture_index();
  Options opt;
  opt.index = &idx;
  const auto findings = eevfs::lint::lint_file(
      kFixtures + "/src/core/bad_include.cpp", opt);
  const std::vector<std::pair<int, std::string>> expected = {
      {3, "I1"},   // obs/gadget.hpp: nothing it declares is used
      {10, "I2"},  // Widget comes via chain.hpp only
  };
  EXPECT_EQ(lines_and_rules(findings), expected);
  EXPECT_NE(findings[1].message.find("'Widget'"), std::string::npos)
      << findings[1].message;
  EXPECT_NE(findings[1].message.find("util/widget.hpp"), std::string::npos);
}

TEST(Lint, IncludeRulesAreOffWithoutAnIndex) {
  const auto findings = eevfs::lint::lint_file(
      kFixtures + "/src/core/bad_include.cpp", Options{});
  EXPECT_TRUE(findings.empty());
}

TEST(Lint, IncludeSuppressionsWaiveBothRules) {
  const auto idx = fixture_index();
  Options opt;
  opt.index = &idx;
  EXPECT_TRUE(eevfs::lint::lint_file(
                  kFixtures + "/src/core/suppressed_include.cpp", opt)
                  .empty());
}

// -------------------------------------------------------- suppressions

TEST(Lint, SuppressionsWaiveFindingsOnlyForMatchingRules) {
  const auto findings = eevfs::lint::lint_file(
      kFixtures + "/src/core/suppressed.cpp", Options{});
  // Everything is allowed except the negative control: a D1 violation
  // carrying an L-family token must still be reported.
  const std::vector<std::pair<int, std::string>> expected = {
      {10, "D1"},
  };
  EXPECT_EQ(lines_and_rules(findings), expected);
}

// --------------------------------------------------------- clean files

TEST(Lint, CleanFixturesProduceZeroFindings) {
  EXPECT_TRUE(
      eevfs::lint::lint_file(kFixtures + "/src/core/clean.hpp", doc_options())
          .empty());
  EXPECT_TRUE(
      eevfs::lint::lint_file(kFixtures + "/src/core/clean.cpp", doc_options())
          .empty());
}

// ------------------------------------------------------ directory walk

TEST(Lint, DirectoryWalkIsDeterministicAndAggregatesAllFixtures) {
  const auto idx = fixture_index();
  Options opt = doc_options();
  opt.index = &idx;
  std::size_t scanned = 0;
  const auto findings =
      eevfs::lint::lint_paths({kFixtures + "/src"}, opt, &scanned);
  EXPECT_EQ(scanned, 17u);  // every .cpp/.hpp fixture, not metrics_doc.md
  // 8 (D) + 3 (L) + 3 (O) + 2 (H) + 1 (H3) + 1 (suppression control)
  // + 5 (U) + 1 (E) + 2 (I).
  EXPECT_EQ(findings.size(), 26u);
  // Deterministic order: sorted by path, then line, then rule.
  auto sorted = findings;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Finding& a, const Finding& b) {
                     return std::tie(a.file, a.line, a.rule) <
                            std::tie(b.file, b.line, b.rule);
                   });
  for (std::size_t i = 0; i < findings.size(); ++i) {
    EXPECT_EQ(findings[i].file, sorted[i].file);
    EXPECT_EQ(findings[i].line, sorted[i].line);
  }
  // A second run returns the identical result.
  const auto again =
      eevfs::lint::lint_paths({kFixtures + "/src"}, opt, nullptr);
  ASSERT_EQ(again.size(), findings.size());
  for (std::size_t i = 0; i < findings.size(); ++i) {
    EXPECT_EQ(again[i].file, findings[i].file);
    EXPECT_EQ(again[i].line, findings[i].line);
    EXPECT_EQ(again[i].rule, findings[i].rule);
    EXPECT_EQ(again[i].message, findings[i].message);
  }
}

// ------------------------------------------------- whole-tree invariant

// The real tree must stay lint-clean under every rule family, with the
// same configuration lint_tree uses (docs check + symbol index).  Any
// new violation needs either a fix or an explicit, justified
// `// eevfs-lint: allow(<rule>)` waiver — never a file exemption.
TEST(Lint, RealTreeIsCleanUnderAllRuleFamilies) {
  const std::string root = EEVFS_SOURCE_ROOT;
  const auto idx = eevfs::lint::build_symbol_index(root + "/src");
  ASSERT_FALSE(idx.empty());
  Options opt;
  opt.check_docs = true;
  opt.documented_metrics =
      eevfs::lint::parse_metrics_doc(root + "/docs/observability.md");
  opt.index = &idx;
  std::size_t scanned = 0;
  const auto findings = eevfs::lint::lint_paths(
      {root + "/src", root + "/bench", root + "/examples", root + "/tests",
       root + "/tools"},
      opt, &scanned);
  EXPECT_GT(scanned, 100u);  // sanity: the walk really covered the tree
  for (const auto& f : findings) {
    ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message;
  }
}

}  // namespace
