#include "util/logging.hpp"

#include <gtest/gtest.h>

namespace eevfs {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kOff); }
};

TEST_F(LoggingTest, DefaultLevelIsOff) {
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST_F(LoggingTest, SetAndGetRoundTrip) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST_F(LoggingTest, SuppressedLinesAreCheap) {
  set_log_level(LogLevel::kError);
  // The macro must not evaluate the stream when disabled — use a side
  // effect to prove it.
  int evaluations = 0;
  const auto probe = [&] {
    ++evaluations;
    return "x";
  };
  EEVFS_TRACE() << probe();
  EEVFS_DEBUG() << probe();
  EXPECT_EQ(evaluations, 0);
  EEVFS_ERROR() << probe();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, LogLineRespectsLevel) {
  // log_line itself must be callable at any level without crashing.
  set_log_level(LogLevel::kOff);
  log_line(LogLevel::kInfo, "should be dropped");
  set_log_level(LogLevel::kInfo);
  log_line(LogLevel::kTrace, "still dropped");
  log_line(LogLevel::kWarn, "emitted to stderr");
}

TEST_F(LoggingTest, LevelsAreOrdered) {
  EXPECT_LT(static_cast<int>(LogLevel::kTrace),
            static_cast<int>(LogLevel::kDebug));
  EXPECT_LT(static_cast<int>(LogLevel::kDebug),
            static_cast<int>(LogLevel::kInfo));
  EXPECT_LT(static_cast<int>(LogLevel::kInfo),
            static_cast<int>(LogLevel::kWarn));
  EXPECT_LT(static_cast<int>(LogLevel::kWarn),
            static_cast<int>(LogLevel::kError));
  EXPECT_LT(static_cast<int>(LogLevel::kError),
            static_cast<int>(LogLevel::kOff));
}

}  // namespace
}  // namespace eevfs
