#include "core/energy_model.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace eevfs::core {
namespace {

class EnergyModelTest : public ::testing::Test {
 protected:
  disk::DiskProfile profile = disk::DiskProfile::ata133_fast();
  EnergyPredictionModel model{profile, seconds_to_ticks(5.0), 1.8};
};

TEST_F(EnergyModelTest, MinProfitableGapIsMaxOfThresholdAndMargin) {
  const Tick margin =
      seconds_to_ticks(1.8 * profile.break_even_seconds());
  EXPECT_EQ(model.min_profitable_gap(),
            std::max(seconds_to_ticks(5.0), margin));

  // With a huge threshold the threshold dominates.
  const EnergyPredictionModel strict(profile, seconds_to_ticks(100.0), 1.8);
  EXPECT_EQ(strict.min_profitable_gap(), seconds_to_ticks(100.0));
}

TEST_F(EnergyModelTest, IdleAndSleepEnergies) {
  const Tick gap = seconds_to_ticks(60.0);
  EXPECT_DOUBLE_EQ(model.idle_energy(gap), profile.idle_watts * 60.0);
  const double transition_s = ticks_to_seconds(profile.spin_down_time) +
                              ticks_to_seconds(profile.spin_up_time);
  EXPECT_NEAR(model.sleep_energy(gap),
              profile.transition_energy() +
                  profile.standby_watts * (60.0 - transition_s),
              1e-9);
}

TEST_F(EnergyModelTest, SleepingThroughTinyGapIsNotCheaper) {
  const Tick tiny = seconds_to_ticks(1.0);
  EXPECT_DOUBLE_EQ(model.sleep_energy(tiny), model.idle_energy(tiny));
  EXPECT_DOUBLE_EQ(model.savings(tiny), 0.0);
}

TEST_F(EnergyModelTest, SavingsCrossZeroAtBreakEven) {
  const double be = profile.break_even_seconds();
  EXPECT_DOUBLE_EQ(model.savings(seconds_to_ticks(be * 0.9)), 0.0);
  EXPECT_GT(model.savings(seconds_to_ticks(be * 1.5)), 0.0);
  // Savings grow linearly past break-even.
  const Joules s2 = model.savings(seconds_to_ticks(be * 2.0));
  const Joules s3 = model.savings(seconds_to_ticks(be * 3.0));
  EXPECT_NEAR(s3 - s2,
              (profile.idle_watts - profile.standby_watts) * be, 1e-4);
}

TEST_F(EnergyModelTest, PlanWindowsFindsOnlyProfitableGaps) {
  const Tick big = model.min_profitable_gap() + seconds_to_ticks(10);
  // Accesses at 0, then a big gap, then a cluster of short gaps.
  std::vector<Tick> accesses = {0, big, big + seconds_to_ticks(1),
                                big + seconds_to_ticks(2)};
  const Tick horizon = big + seconds_to_ticks(3);
  const auto plan = model.plan_windows(accesses, 0, horizon);
  ASSERT_EQ(plan.windows.size(), 1u);
  EXPECT_EQ(plan.windows[0].first, 0);
  EXPECT_EQ(plan.windows[0].second, big);
  EXPECT_GT(plan.predicted_savings, 0.0);
}

TEST_F(EnergyModelTest, PlanWindowsIncludesTrailingWindow) {
  const std::vector<Tick> accesses = {seconds_to_ticks(1)};
  const Tick horizon = seconds_to_ticks(1000);
  const auto plan = model.plan_windows(accesses, 0, horizon);
  ASSERT_EQ(plan.windows.size(), 1u);
  EXPECT_EQ(plan.windows[0].first, seconds_to_ticks(1));
  EXPECT_EQ(plan.windows[0].second, horizon);
}

TEST_F(EnergyModelTest, EmptyAccessesSleepWholeHorizon) {
  const auto plan = model.plan_windows({}, 0, seconds_to_ticks(500));
  ASSERT_EQ(plan.windows.size(), 1u);
  EXPECT_EQ(plan.windows[0],
            (std::pair<Tick, Tick>{0, seconds_to_ticks(500)}));
}

TEST_F(EnergyModelTest, DenseAccessesYieldNoWindows) {
  std::vector<Tick> accesses;
  for (int i = 0; i < 100; ++i) accesses.push_back(seconds_to_ticks(i));
  const auto plan = model.plan_windows(accesses, 0, seconds_to_ticks(100));
  EXPECT_TRUE(plan.windows.empty());
  EXPECT_DOUBLE_EQ(plan.predicted_savings, 0.0);
}

TEST_F(EnergyModelTest, PlanRespectsStartOffset) {
  const auto plan =
      model.plan_windows({}, seconds_to_ticks(100), seconds_to_ticks(400));
  ASSERT_EQ(plan.windows.size(), 1u);
  EXPECT_EQ(plan.windows[0].first, seconds_to_ticks(100));
}

TEST_F(EnergyModelTest, PrefetchBenefitPositiveForHotLonelyFile) {
  // One file generates all traffic on the disk, evenly every 10 s; the
  // gaps are below the profit gate, so without prefetching there are no
  // windows.  Removing the file opens the whole horizon.
  std::vector<Tick> accesses;
  for (int i = 0; i < 100; ++i) {
    accesses.push_back(seconds_to_ticks(10.0 * i));
  }
  const Joules benefit = model.prefetch_benefit(
      accesses, accesses, 10 * kMB, 0, seconds_to_ticks(1000), profile);
  EXPECT_GT(benefit, 0.0);
}

TEST_F(EnergyModelTest, PrefetchBenefitNegativeForColdFileInDenseTraffic) {
  // The disk's other traffic arrives every 5 s (no sleepable window);
  // removing a single access at 500 s opens only a ~10 s gap — still
  // below the profit gate — so buffering the file is pure cost.
  std::vector<Tick> disk_accesses;
  for (int i = 0; i <= 200; ++i) {
    disk_accesses.push_back(seconds_to_ticks(5.0 * i));
  }
  const std::vector<Tick> file_accesses = {seconds_to_ticks(500)};
  const Joules benefit =
      model.prefetch_benefit(disk_accesses, file_accesses, 10 * kMB, 0,
                             seconds_to_ticks(1000), profile);
  EXPECT_LT(benefit, 0.0);
}

TEST_F(EnergyModelTest, PrefetchBenefitPositiveWhenItMergesTwoWindows) {
  // A single access in the middle of an otherwise quiet horizon: removing
  // it merges two sleep windows into one and saves a transition cycle.
  const std::vector<Tick> accesses = {seconds_to_ticks(500)};
  const Joules benefit = model.prefetch_benefit(
      accesses, accesses, 10 * kMB, 0, seconds_to_ticks(1000), profile);
  EXPECT_GT(benefit, 0.0);
  EXPECT_LT(benefit, profile.transition_energy());
}

TEST_F(EnergyModelTest, PrefetchBenefitOfNoAccessFileIsJustCopyCost) {
  const std::vector<Tick> disk_accesses = {};
  const Joules benefit = model.prefetch_benefit(
      disk_accesses, {}, 10 * kMB, 0, seconds_to_ticks(1000), profile);
  EXPECT_LT(benefit, 0.0);
}

}  // namespace
}  // namespace eevfs::core
