// Streaming workload path: SyntheticStream must reproduce
// generate_synthetic record-for-record, and Cluster::run_stream must
// agree with Cluster::run whenever the two paths are semantically
// identical (no power hints in play, no arrival-time ties).
#include "workload/stream.hpp"

#include <gtest/gtest.h>

#include "baseline/presets.hpp"
#include "core/cluster.hpp"
#include "workload/synthetic.hpp"

namespace eevfs::workload {
namespace {

void expect_same_sequence(const SyntheticConfig& cfg) {
  const Workload eager = generate_synthetic(cfg);
  const StreamingWorkload lazy = make_synthetic_stream(cfg);

  ASSERT_EQ(lazy.file_sizes, eager.file_sizes);
  ASSERT_EQ(lazy.num_requests, eager.requests.size());
  EXPECT_EQ(lazy.name, eager.name);

  // Two independent passes, both checked against the eager trace —
  // passes must be deterministic and restartable.
  for (int pass = 0; pass < 2; ++pass) {
    auto stream = lazy.open();
    trace::TraceRecord r;
    std::size_t i = 0;
    while (stream->next(&r)) {
      ASSERT_LT(i, eager.requests.size());
      const trace::TraceRecord& e = eager.requests[i];
      ASSERT_EQ(r.arrival, e.arrival) << "pass " << pass << " record " << i;
      ASSERT_EQ(r.file, e.file) << "pass " << pass << " record " << i;
      ASSERT_EQ(r.bytes, e.bytes) << "pass " << pass << " record " << i;
      ASSERT_EQ(r.client, e.client) << "pass " << pass << " record " << i;
      ++i;
    }
    EXPECT_EQ(i, eager.requests.size());
  }
}

TEST(StreamWorkload, MatchesGenerateSyntheticFixedSpacing) {
  SyntheticConfig cfg;
  cfg.num_requests = 400;
  cfg.mu = 100.0;
  expect_same_sequence(cfg);
}

TEST(StreamWorkload, MatchesGenerateSyntheticJitteredAndDispersed) {
  SyntheticConfig cfg;
  cfg.num_requests = 400;
  cfg.mu = 10.0;
  cfg.inter_arrival_jitter = 1.0;
  cfg.size_sigma = 0.5;
  cfg.seed = 7;
  expect_same_sequence(cfg);
}

// With prefetching off and the power policy disabled the streaming
// path's modeled access-pattern hints are never consulted, and a
// non-zero inter-arrival delay rules out same-tick arrival ties — so
// run() and run_stream() execute the identical event sequence and every
// metric must match bit-exactly.
TEST(StreamWorkload, RunStreamMatchesRunWithoutHints) {
  SyntheticConfig wcfg;
  wcfg.num_requests = 300;
  wcfg.mu = 100.0;
  wcfg.inter_arrival_ms = 700.0;

  core::ClusterConfig ccfg = baseline::eevfs_pf();
  ccfg.enable_prefetch = false;
  ccfg.power_policy = core::PowerPolicy::kNone;

  core::Cluster eager(ccfg);
  const core::RunMetrics a = eager.run(generate_synthetic(wcfg));
  core::Cluster lazy(ccfg);
  const core::RunMetrics b = lazy.run_stream(make_synthetic_stream(wcfg));

  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.total_joules, b.total_joules);  // bit-exact
  EXPECT_EQ(a.disk_joules, b.disk_joules);
  EXPECT_EQ(a.bytes_served, b.bytes_served);
  EXPECT_EQ(a.buffer_hits, b.buffer_hits);
  EXPECT_EQ(a.data_disk_reads, b.data_disk_reads);
  EXPECT_EQ(a.response_time_sec.mean(), b.response_time_sec.mean());
  EXPECT_EQ(a.response_p99_sec, b.response_p99_sec);
  // The pump adds its own re-arm/wake bookkeeping events, so the
  // streaming run executes strictly more events for the same outcome.
  EXPECT_GT(lazy.executed_events(), eager.executed_events());
}

TEST(StreamWorkload, RunStreamServesAllWithBoundedResidency) {
  SyntheticConfig wcfg;
  wcfg.num_requests = 2000;
  wcfg.mu = 100.0;
  wcfg.inter_arrival_ms = 350.0;

  core::Cluster c(baseline::eevfs_pf());
  const core::RunMetrics m = c.run_stream(make_synthetic_stream(wcfg));

  EXPECT_EQ(m.requests, wcfg.num_requests);
  EXPECT_EQ(m.response_time_sec.count(), wcfg.num_requests);
  EXPECT_EQ(m.availability.failed_requests, 0u);
  EXPECT_GT(m.total_joules, 0.0);
  // The whole point of the streaming path: the replay never holds more
  // than the look-ahead window, far below the full trace.
  EXPECT_GT(c.stream_peak_resident_records(), 0u);
  EXPECT_LT(c.stream_peak_resident_records(), wcfg.num_requests / 2);
}

TEST(StreamWorkload, RunStreamIsDeterministic) {
  SyntheticConfig wcfg;
  wcfg.num_requests = 500;
  wcfg.mu = 10.0;

  const core::ClusterConfig ccfg = baseline::eevfs_pf();
  core::Cluster a(ccfg), b(ccfg);
  const core::RunMetrics ma = a.run_stream(make_synthetic_stream(wcfg));
  const core::RunMetrics mb = b.run_stream(make_synthetic_stream(wcfg));
  EXPECT_EQ(ma.total_joules, mb.total_joules);  // bit-exact
  EXPECT_EQ(ma.makespan, mb.makespan);
  EXPECT_EQ(ma.power_transitions, mb.power_transitions);
  EXPECT_EQ(a.stream_peak_resident_records(),
            b.stream_peak_resident_records());
}

TEST(StreamWorkload, RunStreamRejectsOnlinePopularity) {
  SyntheticConfig wcfg;
  wcfg.num_requests = 50;
  core::ClusterConfig ccfg = baseline::eevfs_pf();
  ccfg.online_popularity = true;
  core::Cluster c(ccfg);
  EXPECT_THROW(c.run_stream(make_synthetic_stream(wcfg)),
               std::invalid_argument);
}

}  // namespace
}  // namespace eevfs::workload
