#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace eevfs {
namespace {

CliParser make_parser() {
  CliParser cli("test tool");
  cli.add_flag("alpha", "a double", "1.0");
  cli.add_flag("count", "an int", "10");
  cli.add_flag("name", "a string");
  cli.add_flag("verbose", "a bool switch");
  return cli;
}

bool parse(CliParser& cli, std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return cli.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, SpaceSeparatedValues) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--alpha", "2.5", "--name", "web"}));
  EXPECT_DOUBLE_EQ(cli.get_double("alpha", 0.0), 2.5);
  EXPECT_EQ(cli.get_or("name", ""), "web");
}

TEST(Cli, EqualsSeparatedValues) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--count=42", "--name=x"}));
  EXPECT_EQ(cli.get_int("count", 0), 42);
  EXPECT_EQ(cli.get_or("name", ""), "x");
}

TEST(Cli, BooleanSwitches) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--verbose", "--count", "3"}));
  EXPECT_TRUE(cli.get_bool("verbose"));
  EXPECT_EQ(cli.get_int("count", 0), 3);
  EXPECT_FALSE(cli.get_bool("missing-switch", false));
}

TEST(Cli, BoolAcceptsCommonSpellings) {
  for (const char* v : {"true", "1", "yes", "on"}) {
    CliParser cli = make_parser();
    ASSERT_TRUE(parse(cli, {"--verbose", v}));
    EXPECT_TRUE(cli.get_bool("verbose")) << v;
  }
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--verbose", "false"}));
  EXPECT_FALSE(cli.get_bool("verbose", true));
}

TEST(Cli, DefaultsWhenAbsent) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {}));
  EXPECT_DOUBLE_EQ(cli.get_double("alpha", 1.5), 1.5);
  EXPECT_EQ(cli.get_int("count", 7), 7);
  EXPECT_EQ(cli.get_or("name", "dflt"), "dflt");
  EXPECT_FALSE(cli.has("alpha"));
  EXPECT_FALSE(cli.get("name").has_value());
}

TEST(Cli, UnknownFlagIsAnError) {
  CliParser cli = make_parser();
  EXPECT_FALSE(parse(cli, {"--nope", "1"}));
  EXPECT_NE(cli.error().find("nope"), std::string::npos);
}

TEST(Cli, MalformedNumbersFallBackToDefault) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--count", "abc", "--alpha", "xyz"}));
  EXPECT_EQ(cli.get_int("count", 9), 9);
  EXPECT_DOUBLE_EQ(cli.get_double("alpha", 3.5), 3.5);
}

TEST(Cli, PositionalArgumentsCollected) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"input.trace", "--count", "1", "more"}));
  EXPECT_EQ(cli.positional(),
            (std::vector<std::string>{"input.trace", "more"}));
}

TEST(Cli, HelpRequested) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--help"}));
  EXPECT_TRUE(cli.help_requested());
  const std::string usage = cli.usage("prog");
  EXPECT_NE(usage.find("--alpha"), std::string::npos);
  EXPECT_NE(usage.find("test tool"), std::string::npos);
  EXPECT_NE(usage.find("default: 1.0"), std::string::npos);
}

}  // namespace
}  // namespace eevfs
