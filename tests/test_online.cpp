// Online popularity mode: the server learns from its request log and
// periodically reconciles each node's buffered set.
#include <gtest/gtest.h>

#include "baseline/presets.hpp"
#include "core/cluster.hpp"
#include "workload/synthetic.hpp"

namespace eevfs::core {
namespace {

workload::Workload skewed(std::size_t requests = 800, std::uint64_t seed = 42) {
  workload::SyntheticConfig cfg;
  cfg.num_requests = requests;
  cfg.mu = 100.0;  // tight working set: easy to learn
  cfg.seed = seed;
  return workload::generate_synthetic(cfg);
}

ClusterConfig online_config(double interval_sec = 30.0) {
  ClusterConfig cfg = baseline::eevfs_pf();
  cfg.online_popularity = true;
  cfg.refresh_interval_sec = interval_sec;
  return cfg;
}

TEST(OnlineMode, LearnsAndServesFromBuffer) {
  Cluster c(online_config());
  const auto w = skewed();
  const RunMetrics m = c.run(w);
  EXPECT_EQ(m.requests, w.requests.size());
  EXPECT_EQ(m.bytes_served, w.requests.total_bytes());
  // No foreknowledge: nothing prefetched before replay...
  EXPECT_EQ(m.prefetch_duration, 0);
  // ...but the log-driven refresh finds the working set.
  EXPECT_GT(m.buffer_hit_rate(), 0.5);
  EXPECT_GT(c.server().refreshes_performed(), 3u);
}

TEST(OnlineMode, EnergySitsBetweenNpfAndOfflinePf) {
  const auto w = skewed();
  RunMetrics online, offline, npf;
  {
    Cluster c(online_config());
    online = c.run(w);
  }
  {
    Cluster c(baseline::eevfs_pf());
    offline = c.run(w);
  }
  {
    Cluster c(baseline::eevfs_npf());
    npf = c.run(w);
  }
  EXPECT_LT(online.total_joules, npf.total_joules);
  EXPECT_GT(online.total_joules, offline.total_joules * 0.999);
}

TEST(OnlineMode, HitRateImprovesOverTheRun) {
  // Compare the hit rate of a short run against a long one with the same
  // workload prefix: more elapsed time means more learned popularity.
  RunMetrics short_run, long_run;
  {
    Cluster c(online_config());
    short_run = c.run(skewed(200));
  }
  {
    Cluster c(online_config());
    long_run = c.run(skewed(1600));
  }
  EXPECT_GT(long_run.buffer_hit_rate(), short_run.buffer_hit_rate());
}

TEST(OnlineMode, AdaptsToAPopularityShift) {
  // Phase change mid-trace: the hot set moves to a disjoint id range.
  // Offline PF (trained on the whole trace) still covers both phases, so
  // the interesting check is that online mode keeps adapting: its final
  // buffered set must contain phase-2 files.
  workload::SyntheticConfig a;
  a.num_requests = 600;
  a.mu = 50.0;
  workload::SyntheticConfig b = a;
  b.mu = 700.0;
  b.seed = 43;
  const auto wa = workload::generate_synthetic(a);
  const auto wb = workload::generate_synthetic(b);
  workload::Workload merged;
  merged.name = "phase_shift";
  merged.file_sizes = wa.file_sizes;
  for (const auto& r : wa.requests.records()) merged.requests.append(r);
  const Tick offset = wa.requests.duration() + milliseconds_to_ticks(700);
  for (const auto& r : wb.requests.records()) {
    trace::TraceRecord copy = r;
    copy.arrival += offset;
    merged.requests.append(copy);
  }

  Cluster c(online_config(20.0));
  const RunMetrics m = c.run(merged);
  EXPECT_GT(m.buffer_hit_rate(), 0.3);
  // A phase-2 hot file (ids near 700) ended up buffered on its node.
  const trace::PopularityAnalyzer phase2(wb.requests);
  const trace::FileId hot2 = phase2.ranked().front().file;
  bool buffered_somewhere = false;
  for (std::size_t n = 0; n < c.num_nodes(); ++n) {
    buffered_somewhere |= c.node(n).is_buffered(hot2);
  }
  EXPECT_TRUE(buffered_somewhere);
}

TEST(OnlineMode, RefreshStopsWithTheRun) {
  Cluster c(online_config(5.0));
  const auto w = skewed(300);
  const RunMetrics m = c.run(w);
  (void)m;
  const auto refreshes = c.server().refreshes_performed();
  EXPECT_GT(refreshes, 0u);  // it ran, and the simulation still drained
}

TEST(OnlineMode, RejectsNonPositiveInterval) {
  ClusterConfig cfg = online_config(0.0);
  EXPECT_THROW(Cluster{cfg}, std::invalid_argument);
}

TEST(OnlineMode, NpfOnlineDoesNothing) {
  ClusterConfig cfg = online_config();
  cfg.enable_prefetch = false;
  cfg.power_policy = PowerPolicy::kNone;
  Cluster c(cfg);
  const RunMetrics m = c.run(skewed(300));
  EXPECT_EQ(m.buffer_hits, 0u);
  EXPECT_EQ(c.server().refreshes_performed(), 0u);
}

}  // namespace
}  // namespace eevfs::core
