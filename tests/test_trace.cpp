// Trace container, popularity analysis, text IO, and the append-only
// access log.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "trace/access_log.hpp"
#include "trace/io.hpp"
#include "trace/trace.hpp"

namespace eevfs::trace {
namespace {

Trace make_trace() {
  Trace t;
  t.append({seconds_to_ticks(0), 5, 10 * kMB, Op::kRead, 0});
  t.append({seconds_to_ticks(1), 3, 5 * kMB, Op::kRead, 1});
  t.append({seconds_to_ticks(2), 5, 10 * kMB, Op::kRead, 0});
  t.append({seconds_to_ticks(4), 5, 10 * kMB, Op::kWrite, 2});
  t.append({seconds_to_ticks(5), 7, 1 * kMB, Op::kRead, 0});
  return t;
}

TEST(Trace, AppendMaintainsCountsAndTotals) {
  const Trace t = make_trace();
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(t.unique_files(), 3u);
  EXPECT_EQ(t.counts().at(5), 3u);
  EXPECT_EQ(t.counts().at(3), 1u);
  EXPECT_EQ(t.total_bytes(), 36 * kMB);
  EXPECT_EQ(t.duration(), seconds_to_ticks(5));
}

TEST(Trace, RejectsOutOfOrderArrivals) {
  Trace t;
  t.append({100, 1, 1, Op::kRead, 0});
  EXPECT_THROW(t.append({99, 1, 1, Op::kRead, 0}), std::invalid_argument);
  t.append({100, 2, 1, Op::kRead, 0});  // equal arrivals are fine
}

TEST(Trace, EmptyTraceBasics) {
  const Trace t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.duration(), 0);
  EXPECT_EQ(t.unique_files(), 0u);
}

TEST(PopularityAnalyzer, RanksByCountThenId) {
  const Trace t = make_trace();
  const PopularityAnalyzer a(t);
  ASSERT_EQ(a.ranked().size(), 3u);
  EXPECT_EQ(a.ranked()[0].file, 5u);
  EXPECT_EQ(a.ranked()[0].accesses, 3u);
  // Files 3 and 7 tie on one access; the lower id ranks first.
  EXPECT_EQ(a.ranked()[1].file, 3u);
  EXPECT_EQ(a.ranked()[2].file, 7u);
  EXPECT_EQ(a.rank(5), 0u);
  EXPECT_EQ(a.rank(7), 2u);
  EXPECT_EQ(a.rank(999), PopularityAnalyzer::npos);
}

TEST(PopularityAnalyzer, TopAndCoverage) {
  const Trace t = make_trace();
  const PopularityAnalyzer a(t);
  EXPECT_EQ(a.top(1), (std::vector<FileId>{5}));
  EXPECT_EQ(a.top(10).size(), 3u);
  EXPECT_DOUBLE_EQ(a.coverage(1), 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(a.coverage(3), 1.0);
  EXPECT_DOUBLE_EQ(a.coverage(0), 0.0);
}

TEST(PopularityAnalyzer, MeanGapAndAccessTimes) {
  const Trace t = make_trace();
  const PopularityAnalyzer a(t);
  const FilePopularity& hot = a.ranked()[0];
  EXPECT_EQ(hot.first_access, 0);
  EXPECT_EQ(hot.last_access, seconds_to_ticks(4));
  EXPECT_EQ(hot.mean_gap, seconds_to_ticks(2));  // gaps 2 s and 2 s
  EXPECT_EQ(a.ranked()[1].mean_gap, 0);          // single access
}

TEST(TraceIo, RoundTripsThroughText) {
  const Trace t = make_trace();
  std::stringstream ss;
  write_trace(ss, t);
  const Trace back = read_trace(ss);
  ASSERT_EQ(back.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(back[i], t[i]) << "record " << i;
  }
}

TEST(TraceIo, AcceptsCommentsAndBlankLines) {
  std::stringstream ss;
  ss << kTraceMagic << "\n\n# a comment\n100 1 1000 r 0\n";
  const Trace t = read_trace(ss);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].file, 1u);
  EXPECT_EQ(t[0].op, Op::kRead);
}

TEST(TraceIo, RejectsMissingMagic) {
  std::stringstream ss("100 1 1000 r 0\n");
  EXPECT_THROW(read_trace(ss), std::runtime_error);
}

TEST(TraceIo, RejectsBadFieldCount) {
  std::stringstream ss;
  ss << kTraceMagic << "\n100 1 1000 r\n";
  EXPECT_THROW(read_trace(ss), std::runtime_error);
}

TEST(TraceIo, RejectsBadOp) {
  std::stringstream ss;
  ss << kTraceMagic << "\n100 1 1000 x 0\n";
  EXPECT_THROW(read_trace(ss), std::runtime_error);
}

TEST(TraceIo, RejectsBadNumber) {
  std::stringstream ss;
  ss << kTraceMagic << "\nabc 1 1000 r 0\n";
  EXPECT_THROW(read_trace(ss), std::runtime_error);
}

TEST(TraceIo, RejectsEmptyInput) {
  std::stringstream ss("");
  EXPECT_THROW(read_trace(ss), std::runtime_error);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = "/tmp/eevfs_trace_test.trace";
  write_trace_file(path, make_trace());
  const Trace back = read_trace_file(path);
  EXPECT_EQ(back.size(), 5u);
  EXPECT_THROW(read_trace_file("/nonexistent/nope.trace"),
               std::runtime_error);
}

TEST(AccessLog, CountsAndRanks) {
  AccessLog log;
  log.append(1, 0);
  log.append(2, 10);
  log.append(1, 20);
  log.append(1, 30);
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.accesses(1), 3u);
  EXPECT_EQ(log.accesses(2), 1u);
  EXPECT_EQ(log.accesses(99), 0u);
  EXPECT_EQ(log.ranked(), (std::vector<FileId>{1, 2}));
}

TEST(AccessLog, PredictedGapIsEwma) {
  AccessLog log(0.5);
  EXPECT_FALSE(log.predicted_gap(7).has_value());
  log.append(7, 0);
  EXPECT_FALSE(log.predicted_gap(7).has_value());  // one access, no gap yet
  log.append(7, 100);
  EXPECT_EQ(log.predicted_gap(7).value(), 100);
  log.append(7, 300);  // gap 200; ewma = 0.5*200 + 0.5*100 = 150
  EXPECT_EQ(log.predicted_gap(7).value(), 150);
  EXPECT_EQ(log.last_access(7).value(), 300);
}

TEST(AccessLog, RejectsTimeTravel) {
  AccessLog log;
  log.append(1, 100);
  EXPECT_THROW(log.append(2, 50), std::invalid_argument);
}

TEST(AccessLog, RejectsBadAlpha) {
  EXPECT_THROW(AccessLog(0.0), std::invalid_argument);
  EXPECT_THROW(AccessLog(1.5), std::invalid_argument);
}

TEST(AccessLog, ExportsAsTrace) {
  AccessLog log;
  log.append(3, 5, 100);
  log.append(4, 8, 200);
  const Trace t = log.to_trace();
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].file, 3u);
  EXPECT_EQ(t[1].arrival, 8);
  EXPECT_EQ(t[1].bytes, 200u);
}

}  // namespace
}  // namespace eevfs::trace
