// The write-ahead journal for the buffer-disk write buffer, bottom-up:
// WriteJournal durability mechanics (append-before-ack, RAM vs platter
// state across crash(), checkpoint truncation, repeatable replay), then
// the StorageNode crash/replay integration (the ISSUE's acceptance
// criteria: acked writes survive a crash-stop whenever the journal is
// on; journal=off reproduces — and counts — the loss; replaying twice
// leaves bit-identical state).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/storage_node.hpp"
#include "disk/disk_model.hpp"
#include "disk/write_journal.hpp"

namespace eevfs {
namespace {

using disk::IoStatus;
using disk::JournalMode;
using disk::JournalRecord;

TEST(JournalMode, ParseRoundTrips) {
  for (const JournalMode m : {JournalMode::kOff, JournalMode::kCommit,
                              JournalMode::kCheckpoint}) {
    EXPECT_EQ(disk::parse_journal_mode(disk::to_string(m)), m);
  }
  EXPECT_THROW(disk::parse_journal_mode("wal"), std::invalid_argument);
}

// --- WriteJournal mechanics -------------------------------------------

class WriteJournalTest : public ::testing::Test {
 protected:
  disk::JournalParams params(JournalMode mode,
                             std::uint64_t checkpoint_every = 8) {
    disk::JournalParams p;
    p.mode = mode;
    p.checkpoint_every = checkpoint_every;
    return p;
  }

  std::unique_ptr<disk::WriteJournal> make(disk::JournalParams p) {
    return std::make_unique<disk::WriteJournal>(
        sim, p, std::vector<disk::DiskModel*>{&log_disk});
  }

  /// Appends one record and runs the sim; returns the LSN `done` saw.
  std::uint64_t append(disk::WriteJournal& j, std::uint32_t file = 0) {
    std::uint64_t lsn = ~0ull;
    j.append(file, kMB, /*buffer_disk=*/0, /*data_disk=*/0,
             [&](Tick, IoStatus st, std::uint64_t l) {
               EXPECT_EQ(st, IoStatus::kOk);
               lsn = l;
             });
    sim.run();
    return lsn;
  }

  std::vector<JournalRecord> replay(disk::WriteJournal& j) {
    std::vector<JournalRecord> out;
    j.replay([&](Tick, IoStatus st, std::vector<JournalRecord> recs) {
      EXPECT_EQ(st, IoStatus::kOk);
      out = std::move(recs);
    });
    sim.run();
    return out;
  }

  sim::Simulator sim;
  disk::DiskModel log_disk{sim, disk::DiskProfile::ata133_fast(), "log"};
};

TEST_F(WriteJournalTest, OffModeAcksWithoutTouchingTheDisk) {
  auto j = make(params(JournalMode::kOff));
  EXPECT_FALSE(j->enabled());
  EXPECT_EQ(append(*j), 0u);  // LSN 0 = unjournaled
  EXPECT_EQ(log_disk.requests_completed(), 0u);
  EXPECT_EQ(j->appends(), 0u);
  EXPECT_TRUE(replay(*j).empty());
}

TEST_F(WriteJournalTest, CommitAppendsHeaderBeforeAck) {
  auto j = make(params(JournalMode::kCommit));
  EXPECT_EQ(append(*j, 7), 1u);
  EXPECT_EQ(append(*j, 8), 2u);
  EXPECT_EQ(j->appends(), 2u);
  EXPECT_EQ(j->durable_records(), 2u);
  // Each record cost exactly one header-sized log write.
  EXPECT_EQ(log_disk.requests_completed(), 2u);
  EXPECT_EQ(log_disk.bytes_transferred(), 2 * j->params().header_bytes);
}

TEST_F(WriteJournalTest, FullDrainTruncatesForFree) {
  auto j = make(params(JournalMode::kCommit));
  const std::uint64_t a = append(*j), b = append(*j);
  j->mark_destaged(a);
  EXPECT_EQ(j->durable_records(), 2u);  // partial drain: marks are RAM
  j->mark_destaged(b);
  EXPECT_EQ(j->durable_records(), 0u);  // full drain: durable truncate
  EXPECT_EQ(j->truncated_records(), 2u);
  // Truncation piggybacks on the superblock — no extra disk I/O.
  EXPECT_EQ(log_disk.requests_completed(), 2u);
  // Marking an already-truncated LSN is a no-op (idempotent destages).
  j->mark_destaged(a);
  EXPECT_EQ(j->truncated_records(), 2u);
}

TEST_F(WriteJournalTest, CrashLosesRamMarksButNotDurableRecords) {
  auto j = make(params(JournalMode::kCommit));
  const std::uint64_t a = append(*j);
  append(*j);
  append(*j);
  j->mark_destaged(a);  // RAM-only in commit mode
  j->crash();
  // The destage mark died with the process: replay must return all
  // three records — re-destaging record `a` is idempotent upstream.
  const auto recs = replay(*j);
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].lsn, 1u);
  EXPECT_EQ(recs[2].lsn, 3u);
}

TEST_F(WriteJournalTest, CheckpointDurablyTruncatesTheDestagedPrefix) {
  auto j = make(params(JournalMode::kCheckpoint, /*checkpoint_every=*/2));
  const std::uint64_t a = append(*j), b = append(*j);
  append(*j);
  j->mark_destaged(a);
  j->mark_destaged(b);  // second mark triggers the checkpoint record
  sim.run();
  EXPECT_EQ(j->checkpoints(), 1u);
  EXPECT_EQ(j->truncated_records(), 2u);
  EXPECT_EQ(j->durable_records(), 1u);
  // The checkpoint record is real I/O: 3 headers + 1 checkpoint.
  EXPECT_EQ(log_disk.requests_completed(), 4u);
  // And it survives a crash: replay sees only the un-truncated tail.
  j->crash();
  EXPECT_EQ(replay(*j).size(), 1u);
}

TEST_F(WriteJournalTest, ReplayIsRepeatable) {
  auto j = make(params(JournalMode::kCommit));
  append(*j);
  append(*j);
  j->crash();
  const auto first = replay(*j);
  const auto second = replay(*j);
  ASSERT_EQ(first.size(), 2u);
  ASSERT_EQ(second.size(), 2u);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].lsn, second[i].lsn);
    EXPECT_EQ(first[i].file, second[i].file);
    EXPECT_EQ(first[i].bytes, second[i].bytes);
  }
  // Each replay paid one sequential scan over the durable headers.
  EXPECT_EQ(j->replay_scan_bytes(), 2 * 2 * j->params().header_bytes);
}

TEST_F(WriteJournalTest, CrashDropsInFlightAppends) {
  auto j = make(params(JournalMode::kCommit));
  bool fired = false;
  j->append(0, kMB, 0, 0,
            [&](Tick, IoStatus, std::uint64_t) { fired = true; });
  j->crash();  // header still in flight: the ack never happened
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(j->appends(), 0u);
  EXPECT_EQ(j->durable_records(), 0u);
}

TEST_F(WriteJournalTest, DeadLogDiskFailsAppendsAndReplaysTyped) {
  auto j = make(params(JournalMode::kCommit));
  append(*j);
  log_disk.fail();
  IoStatus append_st = IoStatus::kOk;
  j->append(0, kMB, 0, 0,
            [&](Tick, IoStatus st, std::uint64_t lsn) {
              append_st = st;
              EXPECT_EQ(lsn, 0u);
            });
  sim.run();
  EXPECT_EQ(append_st, IoStatus::kUnavailable);
  // An unreadable scan returns no records but leaves them durable for a
  // later attempt.
  IoStatus replay_st = IoStatus::kOk;
  j->replay([&](Tick, IoStatus st, std::vector<JournalRecord> recs) {
    replay_st = st;
    EXPECT_TRUE(recs.empty());
  });
  sim.run();
  EXPECT_EQ(replay_st, IoStatus::kUnavailable);
  EXPECT_EQ(j->durable_records(), 1u);
}

// --- StorageNode crash/replay integration ------------------------------

class NodeJournalTest : public ::testing::Test {
 protected:
  NodeJournalTest() : net(sim) {
    node_ep = net.add_endpoint("node", net::mbps_to_bytes_per_sec(1000));
    client_ep = net.add_endpoint("client", net::mbps_to_bytes_per_sec(1000));
  }

  core::NodeParams params(JournalMode mode) {
    core::NodeParams p;
    p.id = 0;
    p.data_disks = 2;
    p.buffer_disks = 1;
    p.disk_profile = disk::DiskProfile::ata133_fast();
    p.power.policy = core::PowerPolicy::kPredictive;
    p.journal.mode = mode;
    return p;
  }

  std::unique_ptr<core::StorageNode> make_node(core::NodeParams p) {
    auto node = std::make_unique<core::StorageNode>(sim, net, node_ep, p);
    const Tick horizon = seconds_to_ticks(600);
    std::map<trace::FileId, std::vector<Tick>> pattern;
    for (trace::FileId f = 0; f < 4; ++f) {
      node->create_file(f, 10 * kMB);
      pattern[f].push_back(horizon - seconds_to_ticks(1));
    }
    node->receive_access_pattern(std::move(pattern), horizon);
    node->start_prefetch({}, [] {});
    sim.run();
    return node;
  }

  /// Puts every data disk into standby so buffered writes park (the
  /// destage queue is what the crash destroys or the journal saves).
  void sleep_data_disks(core::StorageNode& node) {
    for (std::size_t d = 0; d < node.num_data_disks(); ++d) {
      node.mutable_data_disk(d).request_spin_down();
    }
    sim.run();
    ASSERT_EQ(node.data_disk(0).state(), disk::PowerState::kStandby);
  }

  /// One acked buffered write of `f`, parked behind sleeping disks.
  void park_write(core::StorageNode& node, trace::FileId f) {
    core::RequestStatus st = core::RequestStatus::kNoReplica;
    node.serve_write(f, 10 * kMB, client_ep,
                     [&](Tick, core::RequestStatus s) { st = s; });
    sim.run();
    ASSERT_EQ(st, core::RequestStatus::kOk);  // acked to the client
    ASSERT_TRUE(node.has_pending_writes());
  }

  std::size_t replay(core::StorageNode& node) {
    std::size_t replayed = ~std::size_t{0};
    node.replay_journal([&](std::size_t n) { replayed = n; });
    sim.run();
    return replayed;
  }

  sim::Simulator sim;
  net::NetworkFabric net;
  net::EndpointId node_ep{}, client_ep{};
};

TEST_F(NodeJournalTest, JournalOffCrashLosesAckedWrites) {
  auto node = make_node(params(JournalMode::kOff));
  sleep_data_disks(*node);
  park_write(*node, 0);
  EXPECT_EQ(node->undestaged_acked(), 1u);
  node->crash();
  // The ack was a lie: the write is gone, and the split accounting says
  // *lost* (healthy disks, destroyed bookkeeping), not *stranded*.
  EXPECT_EQ(node->lost_acked_writes(), 1u);
  EXPECT_EQ(node->writes_stranded(), 0u);
  EXPECT_EQ(node->undestaged_acked(), 0u);
  EXPECT_FALSE(node->has_pending_writes());
  node->restart();
  EXPECT_EQ(replay(*node), 0u);  // nothing journaled, nothing back
  EXPECT_EQ(node->data_disk(0).requests_completed(), 0u);
}

TEST_F(NodeJournalTest, JournalReplayRecoversAckedWrites) {
  auto node = make_node(params(JournalMode::kCommit));
  sleep_data_disks(*node);
  park_write(*node, 0);
  node->crash();
  EXPECT_EQ(node->lost_acked_writes(), 0u);  // the journal holds the IOU
  ASSERT_NE(node->journal(), nullptr);
  EXPECT_EQ(node->journal()->durable_records(), 1u);
  node->restart();
  EXPECT_EQ(replay(*node), 1u);
  EXPECT_EQ(node->journal_replayed(), 1u);
  EXPECT_TRUE(node->has_pending_writes());
  bool flushed = false;
  node->flush_pending_writes([&] { flushed = true; });
  sim.run();
  EXPECT_TRUE(flushed);
  // The destage landed on the platters and retired the journal record.
  EXPECT_EQ(node->data_disk(0).requests_completed(), 1u);
  EXPECT_EQ(node->journal()->durable_records(), 0u);
  EXPECT_EQ(node->undestaged_acked(), 0u);
}

TEST_F(NodeJournalTest, ReplayingTwiceIsIdempotent) {
  auto node = make_node(params(JournalMode::kCommit));
  sleep_data_disks(*node);
  park_write(*node, 0);
  park_write(*node, 1);
  node->crash();
  node->restart();
  EXPECT_EQ(replay(*node), 2u);
  // A crash *during* recovery replays again; live LSNs filter every
  // record, so the second pass re-queues nothing and state is
  // bit-identical: same at-risk count, same queue, one destage each.
  EXPECT_EQ(replay(*node), 0u);
  EXPECT_EQ(node->journal_replayed(), 2u);
  EXPECT_EQ(node->undestaged_acked(), 2u);
  bool flushed = false;
  node->flush_pending_writes([&] { flushed = true; });
  sim.run();
  EXPECT_TRUE(flushed);
  EXPECT_EQ(node->data_disk(0).requests_completed(), 1u);
  EXPECT_EQ(node->data_disk(1).requests_completed(), 1u);
  EXPECT_EQ(node->journal()->durable_records(), 0u);
}

TEST_F(NodeJournalTest, CrashDuringPowerTransitionDropsTheRacingDestage) {
  auto node = make_node(params(JournalMode::kCommit));
  sleep_data_disks(*node);
  park_write(*node, 0);
  // Start the drain: disk 0 begins its spin-up ramp with the destage IO
  // queued behind it — then the crash lands mid-transition.  The epoch
  // guard must drop the racing completion (no retire, no double ack),
  // the flush waiter must still fire (a crash cannot wedge a drain),
  // and the journal must still hold the record for replay.
  bool drained = false;
  node->flush_pending_writes([&] { drained = true; });
  (void)sim.schedule_after(milliseconds_to_ticks(1.0), [&] { node->crash(); });
  sim.run();
  EXPECT_TRUE(drained);
  EXPECT_EQ(node->lost_acked_writes(), 0u);
  EXPECT_EQ(node->undestaged_acked(), 0u);
  ASSERT_NE(node->journal(), nullptr);
  EXPECT_EQ(node->journal()->durable_records(), 1u);  // retire never ran
  node->restart();
  EXPECT_EQ(replay(*node), 1u);
  bool flushed = false;
  node->flush_pending_writes([&] { flushed = true; });
  sim.run();
  EXPECT_TRUE(flushed);
  EXPECT_EQ(node->journal()->durable_records(), 0u);
  EXPECT_FALSE(node->has_pending_writes());
  // At-least-once, not at-most-once: the platter may have seen the
  // dropped pre-crash destage too, but bookkeeping counts exactly one.
  EXPECT_GE(node->data_disk(0).requests_completed(), 1u);
  EXPECT_EQ(node->undestaged_acked(), 0u);
}

// --- RAM write-back tier vs the journal --------------------------------
//
// The RAM tier acks writes before anything reaches the buffer-disk log,
// so the journal's durability guarantee starts only at flush time.  The
// two tests pin both sides of that boundary.

TEST_F(NodeJournalTest, RamStagedWriteDiesWithTheProcessRegardlessOfJournal) {
  core::NodeParams p = params(JournalMode::kCommit);
  p.ram_cache_bytes = 64 * kMB;
  auto node = make_node(p);
  core::RequestStatus st = core::RequestStatus::kNoReplica;
  node->serve_write(0, 10 * kMB, client_ep,
                    [&](Tick, core::RequestStatus s) { st = s; });
  // Crash after the RAM-speed ack but before the 1 s flush interval: the
  // staged bytes never reached the buffer-disk log, so journal=commit
  // cannot save them — the loss is charged to lost_acked_writes.
  (void)sim.schedule_after(milliseconds_to_ticks(100.0),
                           [&] { node->crash(); });
  sim.run();
  EXPECT_EQ(st, core::RequestStatus::kOk);  // the ack was a lie
  EXPECT_EQ(node->ram_writes_absorbed(), 1u);
  EXPECT_EQ(node->ram_lost_writes(), 1u);
  EXPECT_EQ(node->lost_acked_writes(), 1u);
  EXPECT_EQ(node->ram_writebacks(), 0u);
  EXPECT_FALSE(node->has_pending_writes());
  node->restart();
  EXPECT_EQ(replay(*node), 0u);  // the journal never heard of the write
}

TEST_F(NodeJournalTest, RamFlushedWriteIsRecoveredByTheJournal) {
  core::NodeParams p = params(JournalMode::kCommit);
  p.ram_cache_bytes = 64 * kMB;
  auto node = make_node(p);
  sleep_data_disks(*node);
  core::RequestStatus st = core::RequestStatus::kNoReplica;
  node->serve_write(0, 10 * kMB, client_ep,
                    [&](Tick, core::RequestStatus s) { st = s; });
  // Run the flush interval out: the staged write lands on the buffer
  // disk with a commit header and parks behind the sleeping data disk.
  sim.run();
  ASSERT_EQ(st, core::RequestStatus::kOk);
  EXPECT_EQ(node->ram_writebacks(), 1u);
  EXPECT_EQ(node->undestaged_acked(), 1u);
  node->crash();
  // Past the durability window: the flushed write is journal-covered.
  EXPECT_EQ(node->ram_lost_writes(), 0u);
  EXPECT_EQ(node->lost_acked_writes(), 0u);
  ASSERT_NE(node->journal(), nullptr);
  EXPECT_EQ(node->journal()->durable_records(), 1u);
  node->restart();
  EXPECT_EQ(replay(*node), 1u);
  bool flushed = false;
  node->flush_pending_writes([&] { flushed = true; });
  sim.run();
  EXPECT_TRUE(flushed);
  EXPECT_EQ(node->data_disk(0).requests_completed(), 1u);
  EXPECT_EQ(node->journal()->durable_records(), 0u);
}

}  // namespace
}  // namespace eevfs
