#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace eevfs::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, EqualTimestampsPopFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  Tick fired_at = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(Simulator, RejectsPastAndNegative) {
  Simulator sim;
  sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5, [] {}), std::logic_error);
  EXPECT_THROW(sim.schedule_after(-1, [] {}), std::logic_error);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventHandle h = sim.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.now(), 0);  // cancelled events do not advance time
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator sim;
  int count = 0;
  EventHandle h = sim.schedule_at(1, [&] { ++count; });
  sim.run();
  EXPECT_FALSE(h.pending());
  h.cancel();
  sim.run();
  EXPECT_EQ(count, 1);
}

TEST(Simulator, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash
}

TEST(Simulator, HandleNotPendingInsideOwnCallback) {
  Simulator sim;
  EventHandle h;
  bool pending_inside = true;
  h = sim.schedule_at(5, [&] { pending_inside = h.pending(); });
  sim.run();
  EXPECT_FALSE(pending_inside);
}

TEST(Simulator, RunUntilStopsAndResumes) {
  Simulator sim;
  std::vector<Tick> fired;
  for (Tick t : {10, 20, 30, 40}) {
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  const auto n1 = sim.run(25);
  EXPECT_EQ(n1, 2u);
  EXPECT_EQ(sim.now(), 25);
  const auto n2 = sim.run();
  EXPECT_EQ(n2, 2u);
  EXPECT_EQ(fired, (std::vector<Tick>{10, 20, 30, 40}));
}

TEST(Simulator, RunUntilAdvancesClockWhenQueueEmpty) {
  Simulator sim;
  sim.run(1000);
  EXPECT_EQ(sim.now(), 1000);
}

TEST(Simulator, StepExecutesOneEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1, [&] { ++count; });
  sim.schedule_at(2, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_after(1, recurse);
  };
  sim.schedule_at(0, recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), 99);
}

TEST(Simulator, ExecutedEventsCounts) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.executed_events(), 5u);
}

TEST(Simulator, ZeroDelayRunsAtCurrentTime) {
  Simulator sim;
  Tick when = -1;
  sim.schedule_at(42, [&] {
    sim.schedule_after(0, [&] { when = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(when, 42);
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator sim;
  Tick last = -1;
  bool monotone = true;
  for (int i = 0; i < 20000; ++i) {
    const Tick t = (i * 7919) % 1000;  // scrambled times
    sim.schedule_at(t, [&, t] {
      if (sim.now() < last) monotone = false;
      last = sim.now();
      (void)t;
    });
  }
  sim.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(sim.executed_events(), 20000u);
}

}  // namespace
}  // namespace eevfs::sim
