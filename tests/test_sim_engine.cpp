#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

namespace eevfs::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  (void)sim.schedule_at(30, [&] { order.push_back(3); });
  (void)sim.schedule_at(10, [&] { order.push_back(1); });
  (void)sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, EqualTimestampsPopFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    (void)sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  Tick fired_at = -1;
  (void)sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(Simulator, RejectsPastAndNegative) {
  Simulator sim;
  (void)sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5, [] {}), std::logic_error);
  EXPECT_THROW(sim.schedule_after(-1, [] {}), std::logic_error);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventHandle h = sim.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.now(), 0);  // cancelled events do not advance time
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator sim;
  int count = 0;
  EventHandle h = sim.schedule_at(1, [&] { ++count; });
  sim.run();
  EXPECT_FALSE(h.pending());
  h.cancel();
  sim.run();
  EXPECT_EQ(count, 1);
}

TEST(Simulator, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash
}

TEST(Simulator, HandleNotPendingInsideOwnCallback) {
  Simulator sim;
  EventHandle h;
  bool pending_inside = true;
  h = sim.schedule_at(5, [&] { pending_inside = h.pending(); });
  sim.run();
  EXPECT_FALSE(pending_inside);
}

TEST(Simulator, RunUntilStopsAndResumes) {
  Simulator sim;
  std::vector<Tick> fired;
  for (Tick t : {10, 20, 30, 40}) {
    (void)sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  const auto n1 = sim.run(25);
  EXPECT_EQ(n1, 2u);
  EXPECT_EQ(sim.now(), 25);
  const auto n2 = sim.run();
  EXPECT_EQ(n2, 2u);
  EXPECT_EQ(fired, (std::vector<Tick>{10, 20, 30, 40}));
}

TEST(Simulator, RunUntilAdvancesClockWhenQueueEmpty) {
  Simulator sim;
  sim.run(1000);
  EXPECT_EQ(sim.now(), 1000);
}

TEST(Simulator, StepExecutesOneEvent) {
  Simulator sim;
  int count = 0;
  (void)sim.schedule_at(1, [&] { ++count; });
  (void)sim.schedule_at(2, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_after(1, recurse);
  };
  (void)sim.schedule_at(0, recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), 99);
}

TEST(Simulator, ExecutedEventsCounts) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.executed_events(), 5u);
}

TEST(Simulator, ZeroDelayRunsAtCurrentTime) {
  Simulator sim;
  Tick when = -1;
  (void)sim.schedule_at(42, [&] {
    sim.schedule_after(0, [&] { when = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(when, 42);
}

TEST(Simulator, CancelOfRecycledSlotIsNoop) {
  Simulator sim;
  int first = 0, second = 0;
  EventHandle a = sim.schedule_at(1, [&] { ++first; });
  sim.run();  // `a` fired; its slot returns to the free list
  EXPECT_EQ(first, 1);
  // The recycled slot is handed to a new event with a bumped generation.
  EventHandle b = sim.schedule_at(2, [&] { ++second; });
  a.cancel();  // stale ticket: must NOT cancel b
  EXPECT_FALSE(a.pending());
  EXPECT_TRUE(b.pending());
  sim.run();
  EXPECT_EQ(second, 1);
}

TEST(Simulator, CancelledSlotRecyclesBeforePop) {
  Simulator sim;
  bool cancelled_fired = false, reuse_fired = false;
  EventHandle a = sim.schedule_at(10, [&] { cancelled_fired = true; });
  a.cancel();  // releases the slot while its heap entry is still queued
  EventHandle b = sim.schedule_at(5, [&] { reuse_fired = true; });
  a.cancel();  // double-cancel on a reused slot: generation makes it inert
  EXPECT_TRUE(b.pending());
  sim.run();
  EXPECT_FALSE(cancelled_fired);
  EXPECT_TRUE(reuse_fired);
  EXPECT_EQ(sim.now(), 5);
}

TEST(Simulator, PoolIsBoundedByQueueDepth) {
  Simulator sim;
  // Schedule/run in waves: slots must be recycled, not grown per event.
  for (int wave = 0; wave < 50; ++wave) {
    for (int i = 0; i < 10; ++i) {
      (void)sim.schedule_after(i, [] {});
    }
    sim.run();
  }
  EXPECT_EQ(sim.executed_events(), 500u);
  EXPECT_LE(sim.pool_slots(), sim.max_queue_depth());
  EXPECT_LE(sim.max_queue_depth(), 10u);
}

TEST(Simulator, ScheduleInsideCallbackWhilePoolGrows) {
  // Callbacks that schedule bursts force pool reallocation mid-fire; the
  // engine must have no live references into the pool across invoke.
  Simulator sim;
  int fired = 0;
  (void)sim.schedule_at(0, [&] {
    for (int i = 0; i < 1000; ++i) {
      (void)sim.schedule_after(1 + i % 7, [&] { ++fired; });
    }
  });
  sim.run();
  EXPECT_EQ(fired, 1000);
}

TEST(Simulator, CancelInsideOwnCallbackIsNoop) {
  Simulator sim;
  EventHandle h;
  int count = 0;
  h = sim.schedule_at(3, [&] {
    ++count;
    h.cancel();  // slot already released before invoke; must be inert
  });
  sim.run();
  EXPECT_EQ(count, 1);
  // The slot freed by the no-op cancel must still be usable.
  (void)sim.schedule_after(1, [&] { ++count; });
  sim.run();
  EXPECT_EQ(count, 2);
}

TEST(Simulator, InterleavedCancelStressKeepsOrder) {
  Simulator sim;
  std::vector<int> order;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 1000; ++i) {
    handles.push_back(
        sim.schedule_at((i * 13) % 50, [&order, i] { order.push_back(i); }));
  }
  for (std::size_t i = 0; i < handles.size(); i += 3) handles[i].cancel();
  sim.run();
  EXPECT_EQ(order.size(), 1000u - 334u);
  // Survivors must still fire in (time, seq) order.
  for (std::size_t i = 1; i < order.size(); ++i) {
    const int a = order[i - 1], b = order[i];
    const int ta = (a * 13) % 50, tb = (b * 13) % 50;
    EXPECT_TRUE(ta < tb || (ta == tb && a < b)) << a << " vs " << b;
  }
}

TEST(InlineCallback, LargeCaptureFallsBackToHeap) {
  // A capture bigger than the inline buffer must still work (single
  // heap allocation, owned and freed by the wrapper).
  Simulator sim;
  std::array<std::uint64_t, 32> big{};
  big.fill(7);
  std::uint64_t sum = 0;
  (void)sim.schedule_at(1, [big, &sum] {
    for (const auto v : big) sum += v;
  });
  sim.run();
  EXPECT_EQ(sum, 32u * 7u);
}

TEST(InlineCallback, MoveTransfersAndEmptiesSource) {
  int calls = 0;
  InlineCallback a = [&calls] { ++calls; };
  InlineCallback b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);
  InlineCallback c;
  c = std::move(b);
  c();
  EXPECT_EQ(calls, 2);
}

TEST(InlineCallback, DestroysCaptureExactlyOnce) {
  int alive = 0;
  struct Probe {
    int* alive;
    explicit Probe(int* a) : alive(a) { ++*alive; }
    Probe(const Probe& o) : alive(o.alive) { ++*alive; }
    Probe(Probe&& o) noexcept : alive(o.alive) { ++*alive; }
    ~Probe() { --*alive; }
    void operator()() const {}
  };
  {
    InlineCallback cb{Probe(&alive)};
    EXPECT_GT(alive, 0);
    InlineCallback moved = std::move(cb);
    moved();
  }
  EXPECT_EQ(alive, 0);
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator sim;
  Tick last = -1;
  bool monotone = true;
  for (int i = 0; i < 20000; ++i) {
    const Tick t = (i * 7919) % 1000;  // scrambled times
    (void)sim.schedule_at(t, [&, t] {
      if (sim.now() < last) monotone = false;
      last = sim.now();
      (void)t;
    });
  }
  sim.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(sim.executed_events(), 20000u);
}

}  // namespace
}  // namespace eevfs::sim
