// Randomised state-machine exercise of DiskModel: thousands of random
// operation sequences, with invariants checked after every drain.
#include <gtest/gtest.h>

#include "disk/disk_model.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace eevfs::disk {
namespace {

struct FuzzResult {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t completion_order_violations = 0;
};

FuzzResult fuzz_once(std::uint64_t seed, double retry_prob) {
  sim::Simulator sim;
  DiskProfile profile = DiskProfile::ata133_fast();
  profile.spin_up_retry_prob = retry_prob;
  DiskModel disk(sim, profile, "fuzz" + std::to_string(seed));
  Rng rng(seed);

  FuzzResult result;
  std::uint64_t next_tag = 0;
  std::uint64_t last_completed_tag = 0;
  bool first_completion = true;

  for (int step = 0; step < 400; ++step) {
    switch (rng.next_below(5)) {
      case 0:
      case 1: {  // submit a request
        DiskRequest req;
        req.bytes = (1 + rng.next_below(20)) * kMB;
        req.sequential = rng.next_below(2) == 0;
        const std::uint64_t tag = next_tag++;
        req.on_complete = [&, tag](Tick, disk::IoStatus) {
          ++result.completed;
          if (!first_completion && tag != last_completed_tag + 1) {
            ++result.completion_order_violations;
          }
          first_completion = false;
          last_completed_tag = tag;
        };
        disk.submit(std::move(req));
        ++result.submitted;
        break;
      }
      case 2:
        disk.request_spin_down();
        break;
      case 3:
        disk.request_spin_up();
        break;
      case 4:  // let time pass
        sim.run(sim.now() +
                seconds_to_ticks(rng.uniform(0.01, 20.0)));
        break;
    }
  }
  sim.run();
  disk.finalize();

  // Invariants -----------------------------------------------------------
  // 1. Every submitted request completed exactly once.
  EXPECT_EQ(result.completed, result.submitted) << "seed " << seed;
  // 2. FIFO completion order.
  EXPECT_EQ(result.completion_order_violations, 0u) << "seed " << seed;
  // 3. The meter accounts every tick exactly once.
  EXPECT_EQ(disk.meter().total_ticks(), sim.now()) << "seed " << seed;
  // 4. Transition counters are consistent: a disk can only spin up after
  //    spinning down, so ups <= downs, and it ends spun up or down.
  EXPECT_LE(disk.spin_ups(), disk.spin_downs()) << "seed " << seed;
  EXPECT_GE(disk.spin_downs(), disk.spin_ups());
  // 5. Queue fully drained.
  EXPECT_EQ(disk.queue_depth(), 0u) << "seed " << seed;
  // 6. Energy is positive and bounded by the max-power envelope.
  const double seconds = ticks_to_seconds(sim.now());
  EXPECT_GE(disk.meter().total_joules(),
            profile.standby_watts * seconds * 0.999);
  EXPECT_LE(disk.meter().total_joules(),
            profile.spin_up_watts * seconds * 1.001);
  return result;
}

class DiskFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DiskFuzzTest, InvariantsHoldUnderRandomOperations) {
  const FuzzResult r = fuzz_once(GetParam(), 0.0);
  EXPECT_GT(r.submitted, 0u);
}

TEST_P(DiskFuzzTest, InvariantsHoldWithFlakySpinUps) {
  const FuzzResult r = fuzz_once(GetParam() ^ 0xF00D, 0.4);
  EXPECT_GT(r.submitted, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiskFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 26));

TEST(DiskFlakiness, RetriesAreCountedAndCostTime) {
  sim::Simulator sim;
  DiskProfile flaky = DiskProfile::ata133_fast();
  flaky.spin_up_retry_prob = 1.0;  // every spin-up retries
  DiskModel disk(sim, flaky, "always-flaky");
  ASSERT_TRUE(disk.request_spin_down());
  sim.run();
  const Tick t0 = sim.now();
  disk.request_spin_up();
  sim.run();
  EXPECT_EQ(disk.spin_up_retries(), 1u);
  EXPECT_EQ(sim.now() - t0, 2 * flaky.spin_up_time);
}

TEST(DiskFlakiness, ZeroProbabilityNeverRetries) {
  sim::Simulator sim;
  DiskModel disk(sim, DiskProfile::ata133_fast(), "solid");
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(disk.request_spin_down());
    sim.run();
    disk.request_spin_up();
    sim.run();
  }
  EXPECT_EQ(disk.spin_up_retries(), 0u);
}

TEST(DiskFlakiness, DeterministicAcrossRuns) {
  auto run = [] {
    sim::Simulator sim;
    DiskProfile flaky = DiskProfile::ata133_fast();
    flaky.spin_up_retry_prob = 0.5;
    DiskModel disk(sim, flaky, "repeatable");
    for (int i = 0; i < 50; ++i) {
      disk.request_spin_down();
      sim.run();
      disk.request_spin_up();
      sim.run();
    }
    return disk.spin_up_retries();
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 10u);
  EXPECT_LT(a, 40u);
}

}  // namespace
}  // namespace eevfs::disk
