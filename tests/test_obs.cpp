// Observability layer: registry determinism, tracer ring semantics,
// sink golden output, and the guarantee that tracing never perturbs a
// run (docs/observability.md).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "baseline/presets.hpp"
#include "core/cluster.hpp"
#include "core/run_report.hpp"
#include "obs/counters.hpp"
#include "obs/json.hpp"
#include "obs/tracer.hpp"
#include "workload/synthetic.hpp"

namespace eevfs::obs {
namespace {

// ---------------------------------------------------------------- registry

TEST(Registry, CreatesOnFirstUseAndFinds) {
  Registry reg;
  reg.counter("disk.spin_ups.count").add(3);
  reg.gauge("energy.total.joules").set(42.5);
  reg.histogram("disk.queue_wait.us").record(100);
  EXPECT_EQ(reg.size(), 3u);
  ASSERT_NE(reg.find_counter("disk.spin_ups.count"), nullptr);
  EXPECT_EQ(reg.find_counter("disk.spin_ups.count")->value(), 3u);
  ASSERT_NE(reg.find_gauge("energy.total.joules"), nullptr);
  EXPECT_DOUBLE_EQ(reg.find_gauge("energy.total.joules")->value(), 42.5);
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
  EXPECT_EQ(reg.find_gauge("nope"), nullptr);
  EXPECT_EQ(reg.find_histogram("nope"), nullptr);
}

TEST(Registry, NameRegisteredAsOneKindCannotChangeKind) {
  Registry reg;
  reg.counter("a.b.count");  // eevfs-lint: allow(O)
  EXPECT_THROW(reg.gauge("a.b.count"), std::logic_error);  // eevfs-lint: allow(O)
  EXPECT_THROW(reg.histogram("a.b.count"), std::logic_error);  // eevfs-lint: allow(O)
  reg.gauge("c.d.bytes");  // eevfs-lint: allow(O)
  EXPECT_THROW(reg.counter("c.d.bytes"), std::logic_error);  // eevfs-lint: allow(O)
  // Same kind re-lookup returns the same object.
  reg.counter("a.b.count").add(1);  // eevfs-lint: allow(O)
  reg.counter("a.b.count").add(1);  // eevfs-lint: allow(O)
  EXPECT_EQ(reg.find_counter("a.b.count")->value(), 2u);
}

TEST(Registry, SnapshotIsSortedAndDeterministic) {
  auto build = [] {
    Registry reg;
    reg.counter("z.last.count").add(9);  // eevfs-lint: allow(O)
    reg.histogram("m.middle.us").record(7);  // eevfs-lint: allow(O)
    reg.gauge("a.first.joules").set(1.0);  // eevfs-lint: allow(O)
    return reg.snapshot();
  };
  const auto a = build();
  const auto b = build();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[0].name, "a.first.joules");
  EXPECT_EQ(a[1].name, "m.middle.us");
  EXPECT_EQ(a[2].name, "z.last.count");
  EXPECT_EQ(a[0].kind, MetricKind::kGauge);
  EXPECT_EQ(a[1].kind, MetricKind::kHistogram);
  EXPECT_EQ(a[2].kind, MetricKind::kCounter);
  ASSERT_EQ(b.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].value, b[i].value);
    EXPECT_EQ(a[i].count, b[i].count);
  }
}

TEST(Histogram, ExactStatsAndConservativePercentiles) {
  Histogram h;
  EXPECT_EQ(h.percentile(0.99), 0u);
  EXPECT_EQ(h.min(), 0u);
  for (std::uint64_t x : {0ull, 1ull, 2ull, 3ull, 100ull, 1000ull}) {
    h.record(x);
  }
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.sum(), 1106.0);
  EXPECT_DOUBLE_EQ(h.mean(), 1106.0 / 6.0);
  // Percentiles resolve to the upper bound of the containing power-of-two
  // bucket: conservative, never below the true quantile.
  EXPECT_GE(h.percentile(0.5), 2u);
  EXPECT_GE(h.percentile(0.99), 1000u);
  EXPECT_LE(h.percentile(0.99), 1024u);
  EXPECT_EQ(h.percentile(0.0), 0u);  // bucket 0 holds x == 0
}

TEST(Histogram, ZeroAndHugeSamplesLandInBounds) {
  Histogram h;
  h.record(0);
  h.record(~0ull);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(64), 1u);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), ~0ull);
}

// ------------------------------------------------------------------ tracer

TracerConfig small_ring(std::size_t capacity) {
  TracerConfig cfg;
  cfg.enabled = true;
  cfg.capacity = capacity;
  return cfg;
}

TEST(Tracer, DisabledByDefaultAndRecordsNothing) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  EXPECT_FALSE(t.wants(kCatDisk));
  t.instant(0, kCatDisk, TraceLevel::kInfo, t.intern("x"), 0);
  EXPECT_EQ(t.recorded(), 0u);
  EXPECT_TRUE(t.events().empty());
}

TEST(Tracer, WantsFiltersByCategoryAndLevel) {
  TracerConfig cfg = small_ring(8);
  cfg.category_mask = kCatDisk | kCatPower;
  cfg.min_level = TraceLevel::kInfo;
  Tracer t(cfg);
  EXPECT_TRUE(t.wants(kCatDisk));
  EXPECT_TRUE(t.wants(kCatPower, TraceLevel::kInfo));
  EXPECT_FALSE(t.wants(kCatNet));
  EXPECT_FALSE(t.wants(kCatDisk, TraceLevel::kDebug));
  // instant() itself also filters, so unguarded emits are still correct.
  t.instant(1, kCatNet, TraceLevel::kInfo, t.intern("net.send"), 0);
  t.instant(2, kCatDisk, TraceLevel::kDebug, t.intern("disk.state"), 0);
  EXPECT_EQ(t.recorded(), 0u);
  t.instant(3, kCatDisk, TraceLevel::kInfo, t.intern("disk.state"), 0);
  EXPECT_EQ(t.recorded(), 1u);
}

TEST(Tracer, RingOverflowDropsOldestAndCounts) {
  Tracer t(small_ring(4));
  const StringId name = t.intern("ev");
  for (Tick ts = 0; ts < 10; ++ts) {
    t.instant(ts, kCatSim, TraceLevel::kInfo, name, 0);
  }
  EXPECT_EQ(t.recorded(), 10u);  // recorded counts every accepted event
  EXPECT_EQ(t.dropped(), 6u);
  ASSERT_EQ(t.events().size(), 4u);
  // The survivors are the NEWEST four (drop-oldest policy).
  EXPECT_EQ(t.events().front().ts, 6);
  EXPECT_EQ(t.events().back().ts, 9);
}

TEST(Tracer, InternIsStableAndZeroIsEmpty) {
  Tracer t;
  EXPECT_EQ(t.lookup(0), "");
  const StringId a = t.intern("node0/data0");
  const StringId b = t.intern("node0/data0");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, 0u);
  EXPECT_EQ(t.lookup(a), "node0/data0");
  EXPECT_EQ(t.intern(""), 0u);
}

TEST(Tracer, JsonlGoldenOutput) {
  Tracer t(small_ring(8));
  t.instant(150, kCatDisk, TraceLevel::kInfo, t.intern("disk.state"),
            t.intern("node0/data0"), t.intern("idle->active"));
  t.complete(200, 50, kCatClient, TraceLevel::kInfo,
             t.intern("client.request"), t.intern("client1"), t.intern("ok"),
             7, 2);
  std::ostringstream out;
  t.write_jsonl(out);
  EXPECT_EQ(out.str(),
            "{\"ts\":150,\"cat\":\"disk\",\"level\":\"info\","
            "\"name\":\"disk.state\",\"track\":\"node0/data0\","
            "\"detail\":\"idle->active\"}\n"
            "{\"ts\":200,\"dur\":50,\"cat\":\"client\",\"level\":\"info\","
            "\"name\":\"client.request\",\"track\":\"client1\","
            "\"detail\":\"ok\",\"a0\":7,\"a1\":2}\n");
}

TEST(Tracer, ChromeTraceShape) {
  Tracer t(small_ring(8));
  t.instant(10, kCatPower, TraceLevel::kInfo, t.intern("power.sleep"),
            t.intern("node0"));
  t.complete(20, 5, kCatNode, TraceLevel::kInfo, t.intern("node.read"),
             t.intern("node0"), 0, 4096);
  std::ostringstream out;
  t.write_chrome_trace(out);
  const std::string s = out.str();
  // An object wrapping a traceEvents array of instant ("ph":"i"),
  // complete ("ph":"X"), and thread_name metadata events, µs timestamps.
  EXPECT_EQ(s.front(), '{');
  EXPECT_NE(s.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(s.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(s.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(s.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(s.find("\"name\":\"thread_name\""), std::string::npos);
  EXPECT_NE(s.find("\"ts\":10"), std::string::npos);
  EXPECT_NE(s.find("\"dur\":5"), std::string::npos);
  EXPECT_NE(s.find("node0"), std::string::npos);
}

TEST(Tracer, BinaryRoundTrips) {
  Tracer t(small_ring(16));
  t.instant(1, kCatFault, TraceLevel::kInfo, t.intern("fault.inject"),
            t.intern("node2"), t.intern("disk_transient"), -5, 99);
  t.complete(2, 3, kCatNet, TraceLevel::kDebug, t.intern("net.send"),
             t.intern("server"), 0, 1234);
  std::ostringstream out;
  t.write_binary(out);

  Tracer back;
  std::istringstream in(out.str());
  ASSERT_TRUE(back.read_binary(in));
  ASSERT_EQ(back.events().size(), 2u);
  const TraceEvent& e0 = back.events()[0];
  EXPECT_EQ(e0.ts, 1);
  EXPECT_EQ(e0.category, static_cast<std::uint32_t>(kCatFault));
  EXPECT_EQ(back.lookup(e0.name), "fault.inject");
  EXPECT_EQ(back.lookup(e0.track), "node2");
  EXPECT_EQ(back.lookup(e0.detail), "disk_transient");
  EXPECT_EQ(e0.a0, -5);
  EXPECT_EQ(e0.a1, 99);
  const TraceEvent& e1 = back.events()[1];
  EXPECT_EQ(e1.dur, 3);
  EXPECT_EQ(e1.level, TraceLevel::kDebug);
  EXPECT_EQ(back.lookup(e1.name), "net.send");

  std::istringstream garbage("not a trace");
  Tracer reject;
  EXPECT_FALSE(reject.read_binary(garbage));
}

TEST(CategoryMask, ParsesListsAndAll) {
  EXPECT_EQ(parse_category_mask("all"), kAllCategories);
  EXPECT_EQ(parse_category_mask(""), kAllCategories);
  EXPECT_EQ(parse_category_mask("disk"), kCatDisk);
  EXPECT_EQ(parse_category_mask("disk,power,client"),
            kCatDisk | kCatPower | kCatClient);
  // Unknown names are ignored; a spec with no known names falls back to
  // everything rather than silencing the trace.
  EXPECT_EQ(parse_category_mask("bogus"), kAllCategories);
  EXPECT_EQ(parse_category_mask("bogus,disk"), kCatDisk);
}

}  // namespace
}  // namespace eevfs::obs

namespace eevfs::core {
namespace {

workload::Workload tiny_workload(std::size_t requests = 200) {
  workload::SyntheticConfig cfg;
  cfg.num_requests = requests;
  return workload::generate_synthetic(cfg);
}

// The central guarantee of the observability layer: enabling tracing
// changes NOTHING about the simulation — RunMetrics and the counter
// snapshot are identical with tracing on and off.
TEST(Observability, TracingDoesNotPerturbTheRun) {
  const auto w = tiny_workload();
  ClusterConfig off_cfg = baseline::eevfs_pf();
  ClusterConfig on_cfg = off_cfg;
  on_cfg.trace.enabled = true;

  Cluster off(off_cfg), on(on_cfg);
  const RunMetrics a = off.run(w);
  const RunMetrics b = on.run(w);
  EXPECT_GT(on.tracer().recorded(), 0u);
  EXPECT_EQ(off.tracer().recorded(), 0u);

  EXPECT_EQ(a.total_joules, b.total_joules);  // bit-exact
  EXPECT_EQ(a.disk_joules, b.disk_joules);
  EXPECT_EQ(a.power_transitions, b.power_transitions);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.buffer_hits, b.buffer_hits);
  EXPECT_EQ(a.response_time_sec.mean(), b.response_time_sec.mean());
  ASSERT_EQ(a.counters.size(), b.counters.size());
  for (std::size_t i = 0; i < a.counters.size(); ++i) {
    EXPECT_EQ(a.counters[i].name, b.counters[i].name) << i;
    EXPECT_EQ(a.counters[i].kind, b.counters[i].kind) << a.counters[i].name;
    EXPECT_EQ(a.counters[i].value, b.counters[i].value)
        << a.counters[i].name;
    EXPECT_EQ(a.counters[i].count, b.counters[i].count)
        << a.counters[i].name;
  }
}

TEST(Observability, EveryCounterNameFollowsTheConvention) {
  const auto w = tiny_workload(100);
  Cluster c(baseline::eevfs_pf());
  const RunMetrics m = c.run(w);
  ASSERT_FALSE(m.counters.empty());
  for (const auto& s : m.counters) {
    // component.metric.unit — at least three non-empty dot segments.
    std::size_t segments = 1;
    EXPECT_NE(s.name.front(), '.') << s.name;
    EXPECT_NE(s.name.back(), '.') << s.name;
    for (std::size_t i = 1; i < s.name.size(); ++i) {
      if (s.name[i] == '.') {
        ++segments;
        EXPECT_NE(s.name[i - 1], '.') << s.name;
      }
    }
    EXPECT_GE(segments, 3u) << s.name;
  }
}

TEST(Observability, CounterUniverseIsStableAcrossConfigs) {
  // Zero-valued counters are still registered: a fault-free PF run and
  // an NPF run expose the same name universe, so report consumers can
  // diff runs column-by-column.
  const auto w = tiny_workload(100);
  ClusterConfig pf = baseline::eevfs_pf();
  ClusterConfig npf = pf;
  npf.enable_prefetch = false;
  Cluster a(pf), b(npf);
  const RunMetrics ma = a.run(w);
  const RunMetrics mb = b.run(w);
  ASSERT_EQ(ma.counters.size(), mb.counters.size());
  for (std::size_t i = 0; i < ma.counters.size(); ++i) {
    EXPECT_EQ(ma.counters[i].name, mb.counters[i].name);
  }
}

TEST(RunReport, WriterProducesAValidDocument) {
  const auto w = tiny_workload(100);
  ClusterConfig cfg = baseline::eevfs_pf();
  cfg.trace.enabled = true;
  Cluster c(cfg);
  const RunMetrics m = c.run(w);

  RunReportWriter report("test_obs");
  report.add_run({.name = "pf", .config = "tiny synthetic"}, m, &c.tracer());
  report.add_run(
      {.name = "pf/again", .config = "", .wall_seconds = c.wall_seconds()},
      m);
  EXPECT_EQ(report.runs(), 2u);

  std::string error;
  EXPECT_TRUE(validate_run_report(report.json(), &error)) << error;
}

TEST(RunReport, ValidatorRejectsBadDocuments) {
  std::string error;
  EXPECT_FALSE(validate_run_report("not json", &error));
  EXPECT_FALSE(validate_run_report("{}", &error));
  EXPECT_FALSE(error.empty());
  // Wrong schema version hard-fails.
  EXPECT_FALSE(validate_run_report(
      R"({"schema_version":999,"bench":"x","runs":[]})", &error));
  EXPECT_NE(error.find("schema_version"), std::string::npos);
  // Prior schema versions hard-fail too (v1 documents lack "ram").
  EXPECT_FALSE(validate_run_report(
      R"({"schema_version":1,"bench":"x","runs":[]})", &error));
  EXPECT_NE(error.find("schema_version"), std::string::npos);
  // runs must be an array.
  EXPECT_FALSE(validate_run_report(
      R"({"schema_version":2,"bench":"x","runs":{}})", &error));
  // Minimal valid document.
  EXPECT_TRUE(validate_run_report(
      R"({"schema_version":2,"bench":"x","runs":[]})", &error))
      << error;
}

TEST(RunReport, ValidatorEnforcesCounterShape) {
  const char* bad_name =
      R"({"schema_version":2,"bench":"x","runs":[{"name":"r","config":"",
          "meta":{"wall_seconds":0},
          "metrics":{"energy_joules":1,"disk_joules":1,"base_joules":0,
            "power_transitions":0,"spin_ups":0,"spin_downs":0,
            "wakeups_on_demand":0,"response_mean_sec":0,
            "response_p95_sec":0,"response_p99_sec":0,"requests":0,
            "buffer_hits":0,"data_disk_reads":0,"buffer_hit_rate":0,
            "makespan_sec":0,"prefetch_sec":0,"bytes_served":0,
            "bytes_prefetched":0},
          "availability":{"faults_injected":0,"failed_requests":0,
            "timed_out_requests":0,"client_retries":0,"degraded_sec":0,
            "mttr_sec":0,"availability":1},
          "ram":{"enabled":false,"hits":0,"misses":0,"hit_rate":0,
            "evictions":0,"writebacks":0,"writes_absorbed":0,
            "lost_writes":0,"pinned_bytes":0},
          "counters":[{"name":"two.segments","kind":"counter","value":0}]}]})";
  std::string error;
  EXPECT_FALSE(validate_run_report(bad_name, &error));
  EXPECT_NE(error.find("two.segments"), std::string::npos);
}

}  // namespace
}  // namespace eevfs::core
