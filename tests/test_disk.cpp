// DiskProfile, EnergyMeter and the DiskModel state machine.
#include <gtest/gtest.h>

#include <vector>

#include "disk/disk_model.hpp"
#include "disk/disk_profile.hpp"
#include "disk/energy_meter.hpp"
#include "sim/engine.hpp"

namespace eevfs::disk {
namespace {

TEST(DiskProfile, TableOneBandwidths) {
  EXPECT_DOUBLE_EQ(DiskProfile::ata133_fast().bandwidth_bytes_per_sec, 58e6);
  EXPECT_DOUBLE_EQ(DiskProfile::ata133_slow().bandwidth_bytes_per_sec, 34e6);
  EXPECT_DOUBLE_EQ(DiskProfile::sata_server().bandwidth_bytes_per_sec, 100e6);
  EXPECT_EQ(DiskProfile::ata133_fast().capacity, 80 * kGB);
  EXPECT_EQ(DiskProfile::sata_server().capacity, 120 * kGB);
}

TEST(DiskProfile, WattsPerState) {
  const DiskProfile p = DiskProfile::ata133_fast();
  EXPECT_GT(p.watts(PowerState::kActive), p.watts(PowerState::kIdle));
  EXPECT_GT(p.watts(PowerState::kIdle), p.watts(PowerState::kStandby));
  EXPECT_GT(p.watts(PowerState::kSpinningUp), p.watts(PowerState::kActive));
}

TEST(DiskProfile, ServiceTimeComponents) {
  const DiskProfile p = DiskProfile::ata133_fast();
  const Tick random_10mb = p.service_time(10 * kMB, false);
  const Tick seq_10mb = p.service_time(10 * kMB, true);
  // Sequential access skips the full seek + rotational latency.
  EXPECT_EQ(random_10mb - seq_10mb,
            p.avg_seek + p.rotational_latency - p.sequential_seek);
  // Transfer dominates: 10 MB at 58 MB/s is ~172 ms.
  EXPECT_NEAR(ticks_to_seconds(random_10mb), 0.1724 + 0.0132, 0.002);
}

TEST(DiskProfile, ServiceTimeMonotonicInBytes) {
  const DiskProfile p = DiskProfile::ata133_slow();
  Tick prev = 0;
  for (Bytes b : {Bytes{0}, 1 * kMB, 10 * kMB, 50 * kMB}) {
    const Tick t = p.service_time(b, false);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(DiskProfile, BreakEvenMatchesHandComputation) {
  const DiskProfile p = DiskProfile::ata133_fast();
  // E_transition + standby*(T - t_trans) == idle*T  at the break-even T.
  const double T = p.break_even_seconds();
  const double t_trans =
      ticks_to_seconds(p.spin_up_time) + ticks_to_seconds(p.spin_down_time);
  const double sleep_side =
      p.transition_energy() + p.standby_watts * (T - t_trans);
  EXPECT_NEAR(sleep_side, p.idle_watts * T, 1e-9);
  // The paper calls disk break-even times "usually very high": seconds.
  EXPECT_GT(T, 3.0);
  EXPECT_LT(T, 30.0);
}

TEST(EnergyMeter, AccumulatesPerState) {
  EnergyMeter m;
  m.add(PowerState::kIdle, seconds_to_ticks(10), 9.5);
  m.add(PowerState::kActive, seconds_to_ticks(2), 13.5);
  m.add(PowerState::kIdle, seconds_to_ticks(5), 9.5);
  EXPECT_DOUBLE_EQ(m.joules(PowerState::kIdle), 9.5 * 15);
  EXPECT_DOUBLE_EQ(m.joules(PowerState::kActive), 13.5 * 2);
  EXPECT_DOUBLE_EQ(m.total_joules(), 9.5 * 15 + 13.5 * 2);
  EXPECT_EQ(m.total_ticks(), seconds_to_ticks(17));
}

TEST(EnergyMeter, MergeAdds) {
  EnergyMeter a, b;
  a.add(PowerState::kStandby, seconds_to_ticks(4), 2.5);
  b.add(PowerState::kStandby, seconds_to_ticks(6), 2.5);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.joules(PowerState::kStandby), 2.5 * 10);
  EXPECT_EQ(a.ticks(PowerState::kStandby), seconds_to_ticks(10));
}

class DiskModelTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  DiskProfile profile = DiskProfile::ata133_fast();
};

TEST_F(DiskModelTest, StartsIdle) {
  DiskModel disk(sim, profile, "d");
  EXPECT_EQ(disk.state(), PowerState::kIdle);
  EXPECT_FALSE(disk.busy());
  EXPECT_EQ(disk.queue_depth(), 0u);
}

TEST_F(DiskModelTest, ServesRequestWithExactServiceTime) {
  DiskModel disk(sim, profile, "d");
  Tick completed = -1;
  DiskRequest req;
  req.bytes = 10 * kMB;
  req.on_complete = [&](Tick t, disk::IoStatus) { completed = t; };
  disk.submit(std::move(req));
  EXPECT_EQ(disk.state(), PowerState::kActive);
  sim.run();
  EXPECT_EQ(completed, profile.service_time(10 * kMB, false));
  EXPECT_EQ(disk.state(), PowerState::kIdle);
  EXPECT_EQ(disk.requests_completed(), 1u);
  EXPECT_EQ(disk.bytes_transferred(), 10 * kMB);
}

TEST_F(DiskModelTest, QueueIsFifo) {
  DiskModel disk(sim, profile, "d");
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    DiskRequest req;
    req.bytes = kMB;
    req.on_complete = [&order, i](Tick, disk::IoStatus) { order.push_back(i); };
    disk.submit(std::move(req));
  }
  EXPECT_EQ(disk.queue_depth(), 3u);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST_F(DiskModelTest, BackToBackRequestsSerialize) {
  DiskModel disk(sim, profile, "d");
  Tick first = 0, second = 0;
  DiskRequest a, b;
  a.bytes = b.bytes = kMB;
  a.on_complete = [&](Tick t, disk::IoStatus) { first = t; };
  b.on_complete = [&](Tick t, disk::IoStatus) { second = t; };
  disk.submit(std::move(a));
  disk.submit(std::move(b));
  sim.run();
  EXPECT_EQ(second - first, profile.service_time(kMB, false));
}

TEST_F(DiskModelTest, SpinDownOnlyWhenIdleAndEmpty) {
  DiskModel disk(sim, profile, "d");
  DiskRequest req;
  req.bytes = kMB;
  disk.submit(std::move(req));
  EXPECT_FALSE(disk.request_spin_down());  // busy
  sim.run();
  EXPECT_TRUE(disk.request_spin_down());
  EXPECT_EQ(disk.state(), PowerState::kSpinningDown);
  EXPECT_FALSE(disk.request_spin_down());  // already transitioning
  sim.run();
  EXPECT_EQ(disk.state(), PowerState::kStandby);
  EXPECT_EQ(disk.spin_downs(), 1u);
  EXPECT_EQ(disk.spin_ups(), 0u);
}

TEST_F(DiskModelTest, RequestWakesStandbyDiskAndPaysSpinUp) {
  DiskModel disk(sim, profile, "d");
  ASSERT_TRUE(disk.request_spin_down());
  sim.run();
  ASSERT_EQ(disk.state(), PowerState::kStandby);
  const Tick t0 = sim.now();
  Tick completed = -1;
  DiskRequest req;
  req.bytes = kMB;
  req.on_complete = [&](Tick t, disk::IoStatus) { completed = t; };
  disk.submit(std::move(req));
  EXPECT_EQ(disk.state(), PowerState::kSpinningUp);
  sim.run();
  EXPECT_EQ(completed,
            t0 + profile.spin_up_time + profile.service_time(kMB, false));
  EXPECT_EQ(disk.power_transitions(), 2u);
}

TEST_F(DiskModelTest, RequestDuringSpinDownWaitsFullCycle) {
  DiskModel disk(sim, profile, "d");
  ASSERT_TRUE(disk.request_spin_down());
  Tick completed = -1;
  DiskRequest req;
  req.bytes = kMB;
  req.on_complete = [&](Tick t, disk::IoStatus) { completed = t; };
  disk.submit(std::move(req));  // arrives mid-spin-down
  sim.run();
  EXPECT_EQ(completed, profile.spin_down_time + profile.spin_up_time +
                           profile.service_time(kMB, false));
  EXPECT_EQ(disk.spin_ups(), 1u);
}

TEST_F(DiskModelTest, SpinDownRacingArrivalMidTransitionWakes) {
  // A request that lands part-way through the spin-down (not at the same
  // tick the transition started) must set the wake-when-down latch; a
  // second spin-down ask during the race is refused.
  DiskModel disk(sim, profile, "d");
  ASSERT_TRUE(disk.request_spin_down());
  Tick completed = -1;
  (void)sim.schedule_after(profile.spin_down_time / 2, [&] {
    DiskRequest req;
    req.bytes = kMB;
    req.on_complete = [&](Tick t, disk::IoStatus) { completed = t; };
    disk.submit(std::move(req));
    EXPECT_EQ(disk.state(), PowerState::kSpinningDown);
    EXPECT_FALSE(disk.request_spin_down());  // mid-transition: refused
  });
  sim.run();
  EXPECT_EQ(completed, profile.spin_down_time + profile.spin_up_time +
                           profile.service_time(kMB, false));
  EXPECT_EQ(disk.spin_ups(), 1u);
  EXPECT_EQ(disk.state(), PowerState::kIdle);
}

TEST_F(DiskModelTest, SpinUpRetryProbIsDeterministicPerLabel) {
  // The flaky spin-up stream is seeded from the disk label, so the same
  // drive in two separate simulations draws the same retry sequence.
  DiskProfile p = profile;
  p.spin_up_retry_prob = 0.5;
  const auto run_cycles = [&p](const std::string& label) {
    sim::Simulator s;
    DiskModel disk(s, p, label);
    for (int i = 0; i < 20; ++i) {
      disk.request_spin_down();
      s.run();
      disk.request_spin_up();
      s.run();
    }
    return disk.spin_up_retries();
  };
  const std::uint64_t a = run_cycles("d0");
  EXPECT_EQ(a, run_cycles("d0"));
  EXPECT_GT(a, 0u);   // at p=0.5 over 20 cycles some retries must show
  EXPECT_LT(a, 20u);  // ...but not every cycle flakes
}

TEST_F(DiskModelTest, ProactiveSpinUpFromStandby) {
  DiskModel disk(sim, profile, "d");
  ASSERT_TRUE(disk.request_spin_down());
  sim.run();
  disk.request_spin_up();
  EXPECT_EQ(disk.state(), PowerState::kSpinningUp);
  sim.run();
  EXPECT_EQ(disk.state(), PowerState::kIdle);
  disk.request_spin_up();  // no-op when already up
  EXPECT_EQ(disk.state(), PowerState::kIdle);
  EXPECT_EQ(disk.spin_ups(), 1u);
}

TEST_F(DiskModelTest, EnergyAccountingCoversWholeTimeline) {
  DiskModel disk(sim, profile, "d");
  DiskRequest req;
  req.bytes = 10 * kMB;
  disk.submit(std::move(req));
  sim.run();
  ASSERT_TRUE(disk.request_spin_down());
  sim.run();
  // Idle for a while in standby, then finalize.
  (void)sim.schedule_after(seconds_to_ticks(20), [] {});
  sim.run();
  disk.finalize();
  EXPECT_EQ(disk.meter().total_ticks(), sim.now());
  // Energy must equal the per-state hand computation.
  const Tick active = profile.service_time(10 * kMB, false);
  const Tick down = profile.spin_down_time;
  const Tick standby = sim.now() - active - down;
  const Joules expected = energy(profile.active_watts, active) +
                          energy(profile.spin_down_watts, down) +
                          energy(profile.standby_watts, standby);
  EXPECT_NEAR(disk.meter().total_joules(), expected, 1e-9);
}

TEST_F(DiskModelTest, FinalizeIsIdempotent) {
  DiskModel disk(sim, profile, "d");
  (void)sim.schedule_after(seconds_to_ticks(5), [] {});
  sim.run();
  disk.finalize();
  const Joules once = disk.meter().total_joules();
  disk.finalize();
  EXPECT_DOUBLE_EQ(disk.meter().total_joules(), once);
}

TEST_F(DiskModelTest, IdleCallbackFiresOnQueueDrain) {
  DiskModel disk(sim, profile, "d");
  int idle_calls = 0;
  disk.set_idle_callback([&] { ++idle_calls; });
  DiskRequest a, b;
  a.bytes = b.bytes = kMB;
  disk.submit(std::move(a));
  disk.submit(std::move(b));
  sim.run();
  EXPECT_EQ(idle_calls, 1);  // only when the queue fully drains
}

TEST_F(DiskModelTest, IdleCallbackFiresAfterWakeWithEmptyQueue) {
  DiskModel disk(sim, profile, "d");
  int idle_calls = 0;
  disk.set_idle_callback([&] { ++idle_calls; });
  ASSERT_TRUE(disk.request_spin_down());
  sim.run();
  disk.request_spin_up();
  sim.run();
  EXPECT_EQ(idle_calls, 1);
}

TEST_F(DiskModelTest, StateCallbackSeesTransitions) {
  DiskModel disk(sim, profile, "d");
  std::vector<std::pair<PowerState, PowerState>> seen;
  disk.set_state_callback(
      [&](PowerState from, PowerState to) { seen.emplace_back(from, to); });
  ASSERT_TRUE(disk.request_spin_down());
  sim.run();
  ASSERT_GE(seen.size(), 2u);
  EXPECT_EQ(seen[0].first, PowerState::kIdle);
  EXPECT_EQ(seen[0].second, PowerState::kSpinningDown);
  EXPECT_EQ(seen[1].second, PowerState::kStandby);
}

TEST_F(DiskModelTest, SequentialRequestsAreFaster) {
  DiskModel disk(sim, profile, "d");
  Tick seq_done = 0;
  DiskRequest req;
  req.bytes = 10 * kMB;
  req.sequential = true;
  req.on_complete = [&](Tick t, disk::IoStatus) { seq_done = t; };
  disk.submit(std::move(req));
  sim.run();
  EXPECT_EQ(seq_done, profile.service_time(10 * kMB, true));
  EXPECT_LT(seq_done, profile.service_time(10 * kMB, false));
}

}  // namespace
}  // namespace eevfs::disk
