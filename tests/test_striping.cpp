// Intra-node striping (paper §VII future-work extension).
#include <gtest/gtest.h>

#include <memory>

#include "baseline/presets.hpp"
#include "core/cluster.hpp"
#include "core/storage_node.hpp"
#include "workload/synthetic.hpp"

namespace eevfs::core {
namespace {

class StripingNodeTest : public ::testing::Test {
 protected:
  StripingNodeTest() : net(sim) {
    node_ep = net.add_endpoint("node", net::mbps_to_bytes_per_sec(1000));
    client_ep = net.add_endpoint("client", net::mbps_to_bytes_per_sec(1000));
  }

  std::unique_ptr<StorageNode> make_node(std::size_t width,
                                         std::size_t disks = 4) {
    NodeParams p;
    p.data_disks = disks;
    p.disk_profile = disk::DiskProfile::ata133_fast();
    p.stripe_width = width;
    p.prebud_gate = false;  // these tests exercise mechanics, not the gate
    auto node = std::make_unique<StorageNode>(sim, net, node_ep, p);
    std::map<trace::FileId, std::vector<Tick>> pattern;
    for (trace::FileId f = 0; f < 4; ++f) {
      node->create_file(f, 40 * kMB);
      pattern[f] = {seconds_to_ticks(100)};
    }
    node->receive_access_pattern(std::move(pattern), seconds_to_ticks(200));
    node->start_prefetch({}, [] {});
    sim.run();
    return node;
  }

  sim::Simulator sim;
  net::NetworkFabric net;
  net::EndpointId node_ep{}, client_ep{};
};

TEST_F(StripingNodeTest, StripeSetsAreConsecutiveDisks) {
  auto node = make_node(2);
  EXPECT_EQ(node->stripe_disks_of(0), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(node->stripe_disks_of(1), (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(node->stripe_disks_of(3), (std::vector<std::size_t>{3, 0}));
  EXPECT_EQ(node->data_disk_of(3).value(), 3u);  // primary
}

TEST_F(StripingNodeTest, WidthIsClampedToDiskCount) {
  auto node = make_node(99, 2);
  EXPECT_EQ(node->stripe_disks_of(0).size(), 2u);
}

TEST_F(StripingNodeTest, WidthOneMatchesLegacyLayout) {
  auto node = make_node(1);
  for (trace::FileId f = 0; f < 4; ++f) {
    EXPECT_EQ(node->stripe_disks_of(f),
              (std::vector<std::size_t>{f % 4}));
  }
}

TEST_F(StripingNodeTest, StripedReadTouchesAllStripeDisks) {
  auto node = make_node(2);
  node->serve_read(0, client_ep, nullptr);
  sim.run();
  EXPECT_EQ(node->data_disk(0).requests_completed(), 1u);
  EXPECT_EQ(node->data_disk(1).requests_completed(), 1u);
  EXPECT_EQ(node->data_disk(2).requests_completed(), 0u);
  // Each stripe moved half the bytes.
  EXPECT_EQ(node->data_disk(0).bytes_transferred(), 20 * kMB);
}

TEST_F(StripingNodeTest, StripedReadIsFasterThanWholeFile) {
  auto striped = make_node(4);
  auto whole = make_node(1);
  Tick striped_done = 0, whole_done = 0;
  const Tick t0 = sim.now();
  striped->serve_read(
      0, client_ep, [&](Tick t, core::RequestStatus) { striped_done = t - t0; });
  sim.run();
  const Tick t1 = sim.now();
  whole->serve_read(
      0, client_ep, [&](Tick t, core::RequestStatus) { whole_done = t - t1; });
  sim.run();
  EXPECT_LT(striped_done, whole_done);
  // 40 MB over 4 disks: disk phase ~4x faster; the NIC hop is shared.
  EXPECT_LT(striped_done, whole_done * 3 / 4);
}

TEST_F(StripingNodeTest, StripedDirectWriteHitsAllDisks) {
  NodeParams p;
  p.data_disks = 2;
  p.disk_profile = disk::DiskProfile::ata133_fast();
  p.stripe_width = 2;
  p.write_buffering = false;
  StorageNode node(sim, net, node_ep, p);
  node.create_file(0, 10 * kMB);
  node.receive_access_pattern({}, seconds_to_ticks(10));
  node.start_prefetch({}, [] {});
  sim.run();
  node.serve_write(0, 10 * kMB, client_ep, nullptr);
  sim.run();
  EXPECT_EQ(node.data_disk(0).requests_completed(), 1u);
  EXPECT_EQ(node.data_disk(1).requests_completed(), 1u);
}

TEST_F(StripingNodeTest, PrefetchOfStripedFileReadsAllStripes) {
  auto node = make_node(2);
  bool done = false;
  node->start_prefetch({0}, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(node->is_buffered(0));
  // Stripe reads on disks 0 and 1, one buffer write.
  EXPECT_GE(node->data_disk(0).requests_completed(), 1u);
  EXPECT_GE(node->data_disk(1).requests_completed(), 1u);
  EXPECT_EQ(node->buffer_disk(0).bytes_transferred(), 40 * kMB);
}

TEST(StripingCluster, EndToEndTradeoffHolds) {
  workload::SyntheticConfig wcfg;
  wcfg.num_requests = 600;
  wcfg.mean_data_size_mb = 25.0;
  const auto w = workload::generate_synthetic(wcfg);

  ClusterConfig narrow = baseline::eevfs_pf();
  ClusterConfig wide = baseline::eevfs_pf();
  wide.stripe_width = 2;

  RunMetrics m1, m2;
  {
    Cluster c(narrow);
    m1 = c.run(w);
  }
  {
    Cluster c(wide);
    m2 = c.run(w);
  }
  // Striping must still serve everything correctly.
  EXPECT_EQ(m2.requests, w.requests.size());
  EXPECT_EQ(m2.bytes_served, w.requests.total_bytes());
  // The tradeoff: striping cannot *save* energy (every miss touches the
  // whole stripe set), and buffer-miss service gets faster.
  EXPECT_GE(m2.total_joules, m1.total_joules * 0.99);
}

TEST(StripingCluster, InvalidWidthRejected) {
  ClusterConfig cfg = baseline::eevfs_pf();
  cfg.stripe_width = 0;
  EXPECT_THROW(Cluster{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace eevfs::core
