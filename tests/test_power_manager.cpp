#include "core/power_manager.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace eevfs::core {
namespace {

class PowerManagerTest : public ::testing::Test {
 protected:
  PowerManagerTest()
      : profile(disk::DiskProfile::ata133_fast()),
        disk(std::make_unique<disk::DiskModel>(sim, profile, "d0")) {}

  PowerManager::Params params(PowerPolicy policy) {
    PowerManager::Params p;
    p.policy = policy;
    p.idle_threshold = seconds_to_ticks(5.0);
    p.sleep_margin = 1.8;
    return p;
  }

  /// Submits a 1 MB request at absolute time `at`.
  void request_at(PowerManager& pm, Tick at) {
    (void)sim.schedule_at(at, [this, &pm] {
      pm.note_arrival(0);
      disk::DiskRequest req;
      req.bytes = kMB;
      disk->submit(std::move(req));
    });
  }

  sim::Simulator sim;
  disk::DiskProfile profile;
  std::unique_ptr<disk::DiskModel> disk;
};

TEST_F(PowerManagerTest, RejectsEmptyDiskList) {
  EXPECT_THROW(PowerManager(sim, params(PowerPolicy::kIdleTimer), {}),
               std::invalid_argument);
}

TEST_F(PowerManagerTest, NonePolicyNeverSleeps) {
  PowerManager pm(sim, params(PowerPolicy::kNone), {disk.get()});
  pm.start();
  sim.run(seconds_to_ticks(100));
  EXPECT_EQ(disk->state(), disk::PowerState::kIdle);
  EXPECT_EQ(disk->spin_downs(), 0u);
}

TEST_F(PowerManagerTest, IdleTimerSleepsAfterThreshold) {
  PowerManager pm(sim, params(PowerPolicy::kIdleTimer), {disk.get()});
  pm.start();
  sim.run(seconds_to_ticks(4.9));
  EXPECT_EQ(disk->state(), disk::PowerState::kIdle);
  sim.run(seconds_to_ticks(7));
  EXPECT_EQ(disk->state(), disk::PowerState::kStandby);
  EXPECT_EQ(pm.sleeps_initiated(), 1u);
}

TEST_F(PowerManagerTest, ArrivalResetsIdleTimer) {
  PowerManager pm(sim, params(PowerPolicy::kIdleTimer), {disk.get()});
  pm.start();
  request_at(pm, seconds_to_ticks(4.0));
  sim.run(seconds_to_ticks(8.9));
  // The timer re-armed when the request completed (~4.02 s), so at 8.9 s
  // the disk is still up...
  EXPECT_TRUE(disk::is_spun_up(disk->state()));
  sim.run(seconds_to_ticks(12));
  // ...and asleep by ~9.1 s.
  EXPECT_EQ(disk->state(), disk::PowerState::kStandby);
}

TEST_F(PowerManagerTest, PredictiveStaysUpWhenGapBelowGate) {
  PowerManager pm(sim, params(PowerPolicy::kPredictive), {disk.get()});
  pm.set_expected_gap(0, seconds_to_ticks(6.0));  // below 1.8x break-even
  pm.start();
  sim.run(seconds_to_ticks(60));
  EXPECT_EQ(disk->state(), disk::PowerState::kIdle);
  EXPECT_EQ(pm.sleeps_initiated(), 0u);
}

TEST_F(PowerManagerTest, PredictiveSleepsWhenGapClearsGate) {
  PowerManager pm(sim, params(PowerPolicy::kPredictive), {disk.get()});
  pm.set_expected_gap(0, seconds_to_ticks(60.0));
  pm.start();
  sim.run(seconds_to_ticks(10));
  EXPECT_EQ(disk->state(), disk::PowerState::kStandby);
}

TEST_F(PowerManagerTest, PredictiveSleepsWhenNoAccessesExpected) {
  PowerManager pm(sim, params(PowerPolicy::kPredictive), {disk.get()});
  pm.set_expected_gap(0, PowerManager::kNever);
  pm.start();
  sim.run(seconds_to_ticks(10));
  EXPECT_EQ(disk->state(), disk::PowerState::kStandby);
}

TEST_F(PowerManagerTest, PredictiveFallsBackToTimerWithoutInformation) {
  PowerManager pm(sim, params(PowerPolicy::kPredictive), {disk.get()});
  pm.start();  // no expected gap set
  sim.run(seconds_to_ticks(10));
  EXPECT_EQ(disk->state(), disk::PowerState::kStandby);
}

TEST_F(PowerManagerTest, PredictiveEwmaOverridesOptimisticStaticGap) {
  PowerManager pm(sim, params(PowerPolicy::kPredictive), {disk.get()});
  pm.set_expected_gap(0, seconds_to_ticks(1000.0));  // static says sleep
  // Observed arrivals every 2 s say otherwise.
  for (int i = 0; i < 10; ++i) {
    request_at(pm, seconds_to_ticks(2.0 * i));
  }
  sim.run(seconds_to_ticks(40));
  // After the burst the EWMA ~2 s blocks sleeping even though the static
  // expectation would allow it.
  EXPECT_TRUE(disk::is_spun_up(disk->state()));
  EXPECT_EQ(pm.sleeps_initiated(), 0u);
}

TEST_F(PowerManagerTest, PredictedGapReportsConservativeMinimum) {
  PowerManager pm(sim, params(PowerPolicy::kPredictive), {disk.get()});
  EXPECT_FALSE(pm.predicted_gap(0).has_value());
  pm.set_expected_gap(0, seconds_to_ticks(30.0));
  EXPECT_EQ(pm.predicted_gap(0).value(), seconds_to_ticks(30.0));
  request_at(pm, seconds_to_ticks(1.0));
  request_at(pm, seconds_to_ticks(2.0));
  request_at(pm, seconds_to_ticks(3.0));
  sim.run(seconds_to_ticks(4.0));
  // EWMA of ~1 s gaps < static 30 s -> reports the EWMA.
  EXPECT_LT(pm.predicted_gap(0).value(), seconds_to_ticks(2.0));
}

TEST_F(PowerManagerTest, HintsSleepImmediatelyIntoLongWindow) {
  PowerManager pm(sim, params(PowerPolicy::kHints), {disk.get()});
  pm.set_future_accesses(0, {seconds_to_ticks(100)});
  pm.start();
  sim.run(seconds_to_ticks(3));
  // No idle-threshold wait: asleep right away.
  EXPECT_EQ(disk->state(), disk::PowerState::kStandby);
}

TEST_F(PowerManagerTest, HintsProactivelyWakeBeforeTheAccess) {
  PowerManager pm(sim, params(PowerPolicy::kHints), {disk.get()});
  pm.set_future_accesses(0, {seconds_to_ticks(100)});
  pm.start();
  sim.run(seconds_to_ticks(97));
  EXPECT_EQ(disk->state(), disk::PowerState::kStandby);
  sim.run(seconds_to_ticks(100));
  // spin_up_time = 2 s: wake began at t=98, so by t=100 the disk is up.
  EXPECT_TRUE(disk::is_spun_up(disk->state()));
  EXPECT_EQ(disk->spin_ups(), 1u);
}

TEST_F(PowerManagerTest, HintsStayUpForImminentAccess) {
  PowerManager pm(sim, params(PowerPolicy::kHints), {disk.get()});
  pm.set_future_accesses(0, {seconds_to_ticks(3)});
  pm.start();
  sim.run(seconds_to_ticks(2));
  EXPECT_EQ(disk->state(), disk::PowerState::kIdle);
}

TEST_F(PowerManagerTest, HintsSleepForeverWhenNothingIsComing) {
  PowerManager pm(sim, params(PowerPolicy::kHints), {disk.get()});
  pm.set_future_accesses(0, {});
  pm.start();
  sim.run(seconds_to_ticks(1000));
  EXPECT_EQ(disk->state(), disk::PowerState::kStandby);
  EXPECT_EQ(disk->spin_ups(), 0u);
}

TEST_F(PowerManagerTest, OracleIgnoresIdleThresholdFloor) {
  // A gap just above break-even but below the 5 s idle threshold + margin
  // is still taken by the oracle.
  auto p = params(PowerPolicy::kOracle);
  p.idle_threshold = seconds_to_ticks(50.0);
  PowerManager pm(sim, p, {disk.get()});
  const Tick gap =
      seconds_to_ticks(profile.break_even_seconds() * 1.2);
  pm.set_future_accesses(0, {gap});
  pm.start();
  sim.run(seconds_to_ticks(2));
  EXPECT_EQ(disk->state(), disk::PowerState::kStandby);
}

TEST_F(PowerManagerTest, StartArmsAlreadyIdleDisks) {
  PowerManager pm(sim, params(PowerPolicy::kIdleTimer), {disk.get()});
  // Without start() nothing happens...
  sim.run(seconds_to_ticks(20));
  EXPECT_EQ(disk->state(), disk::PowerState::kIdle);
  pm.start();
  sim.run(seconds_to_ticks(30));
  EXPECT_EQ(disk->state(), disk::PowerState::kStandby);
}

}  // namespace
}  // namespace eevfs::core
