// Engine-rework golden test: the event-engine internals may change
// (pooled slots, inline callbacks, a different heap), but every cluster
// scenario must produce bit-identical RunMetrics.  The expected digests
// below were captured from the pre-rework engine (shared_ptr<bool>
// liveness + std::priority_queue) and pin the full metric surface —
// paper metrics, availability accounting, and the complete registry
// counter snapshot — for one representative configuration per bench
// family (fig3/4/5 defaults and sweeps, fig6 webtrace, fault_tolerance,
// online_adaptation, ablation_striping, ablation_policies/MAID,
// crash_recovery).  The digest includes the durability/recovery fields
// (av_lost, rec_*) added with the crash-stop/journal work and the
// erasure fields (ec_*) added with the (n,k) placement work.
//
// If a digest changes, the engine rework altered simulation results:
// diff the printed digest text against the old engine before even
// thinking about re-capturing.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>

#include "core/cluster.hpp"
#include "fault/fault_injector.hpp"
#include "workload/synthetic.hpp"
#include "workload/webtrace.hpp"

namespace eevfs::core {
namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

void field(std::string& out, const char* name, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s=%.17g\n", name, v);
  out += buf;
}

void field(std::string& out, const char* name, std::uint64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s=%llu\n", name,
                static_cast<unsigned long long>(v));
  out += buf;
}

/// Every deterministic field of RunMetrics, rendered exactly.
std::string digest_text(const RunMetrics& m) {
  std::string out;
  field(out, "total_joules", m.total_joules);
  field(out, "disk_joules", m.disk_joules);
  field(out, "base_joules", m.base_joules);
  field(out, "power_transitions", m.power_transitions);
  field(out, "spin_ups", m.spin_ups);
  field(out, "spin_downs", m.spin_downs);
  field(out, "makespan", static_cast<std::uint64_t>(m.makespan));
  field(out, "prefetch_duration",
        static_cast<std::uint64_t>(m.prefetch_duration));
  field(out, "requests", m.requests);
  field(out, "buffer_hits", m.buffer_hits);
  field(out, "data_disk_reads", m.data_disk_reads);
  field(out, "wakeups_on_demand", m.wakeups_on_demand);
  field(out, "bytes_served", static_cast<std::uint64_t>(m.bytes_served));
  field(out, "bytes_prefetched",
        static_cast<std::uint64_t>(m.bytes_prefetched));
  field(out, "resp_count", static_cast<std::uint64_t>(m.response_time_sec.count()));
  field(out, "resp_mean", m.response_time_sec.mean());
  field(out, "resp_min", m.response_time_sec.min());
  field(out, "resp_max", m.response_time_sec.max());
  field(out, "resp_p95", m.response_p95_sec);
  field(out, "resp_p99", m.response_p99_sec);
  const AvailabilityMetrics& av = m.availability;
  field(out, "av_faults", av.faults_injected);
  field(out, "av_failed", av.failed_requests);
  field(out, "av_timed_out", av.timed_out_requests);
  field(out, "av_retried", av.retried_requests);
  field(out, "av_rerouted", av.rerouted_requests);
  field(out, "av_client_retries", av.client_retries);
  field(out, "av_io_retries", av.disk_io_retries);
  field(out, "av_buffer_fallback", av.buffer_fallback_reads);
  field(out, "av_rescues", av.buffered_rescues);
  field(out, "av_stranded", av.writes_stranded);
  field(out, "av_degraded_ticks", static_cast<std::uint64_t>(av.degraded_ticks));
  field(out, "av_recoveries", av.recovery_episodes);
  field(out, "av_mttr", av.mttr_sec);
  field(out, "av_energy_delta", av.fault_energy_delta);
  field(out, "av_lost", av.lost_acked_writes);
  const RecoveryMetrics& rec = m.recovery;
  field(out, "rec_episodes", rec.episodes);
  field(out, "rec_replayed", rec.replayed_writes);
  field(out, "rec_resynced", rec.resynced_files);
  field(out, "rec_rewarmed", rec.rewarmed_files);
  field(out, "rec_replay_ticks", static_cast<std::uint64_t>(rec.replay_ticks));
  field(out, "rec_resync_ticks", static_cast<std::uint64_t>(rec.resync_ticks));
  field(out, "rec_rewarm_ticks", static_cast<std::uint64_t>(rec.rewarm_ticks));
  field(out, "rec_mttr_ticks", static_cast<std::uint64_t>(rec.mttr_ticks));
  const ErasureMetrics& ec = m.erasure;
  field(out, "ec_reads", ec.reads);
  field(out, "ec_degraded", ec.degraded_reads);
  field(out, "ec_reconstructions", ec.reconstructions);
  field(out, "ec_chunk_requests", ec.chunk_requests);
  field(out, "ec_stragglers", ec.straggler_chunks);
  field(out, "ec_hedges", ec.hedges_launched);
  field(out, "ec_hedges_cancelled", ec.hedges_cancelled);
  field(out, "ec_repaired", ec.repaired_chunks);
  field(out, "ec_reconstruct_ticks",
        static_cast<std::uint64_t>(ec.reconstruct_ticks));
  field(out, "ec_energy_estimate", ec.degraded_energy_estimate);
  // RAM-tier fields render only when the tier is on: ram-off digests are
  // byte-identical to the pre-RAM captures above.
  if (m.ram.enabled) {
    field(out, "ram_hits", m.ram.hits);
    field(out, "ram_misses", m.ram.misses);
    field(out, "ram_evictions", m.ram.evictions);
    field(out, "ram_writebacks", m.ram.writebacks);
    field(out, "ram_absorbed", m.ram.writes_absorbed);
    field(out, "ram_lost", m.ram.lost_writes);
    field(out, "ram_pinned_bytes", static_cast<std::uint64_t>(m.ram.pinned_bytes));
  }
  for (const obs::Sample& s : m.counters) {
    out += s.name;
    out += ':';
    out += to_string(s.kind);
    field(out, "/value", s.value);
    field(out, "/count", s.count);
    field(out, "/mean", s.mean);
    field(out, "/p50", s.p50);
    field(out, "/p95", s.p95);
    field(out, "/p99", s.p99);
    field(out, "/min", s.min);
    field(out, "/max", s.max);
  }
  return out;
}

workload::Workload paper_workload(double mu = 1000.0,
                                  double inter_arrival_ms = 700.0) {
  workload::SyntheticConfig cfg;
  cfg.num_files = 1000;
  cfg.num_requests = 1000;
  cfg.mean_data_size_mb = 10.0;
  cfg.mu = mu;
  cfg.inter_arrival_ms = inter_arrival_ms;
  cfg.seed = 42;
  return workload::generate_synthetic(cfg);
}

/// Runs the scenario and checks the digest hash; on mismatch dumps the
/// digest text so it can be diffed against the pre-rework engine.
void expect_golden(const char* name, const ClusterConfig& cfg,
                   const workload::Workload& w, std::uint64_t expected) {
  Cluster cluster(cfg);
  const RunMetrics m = cluster.run(w);
  const std::string text = digest_text(m);
  const std::uint64_t h = fnv1a(text);
  EXPECT_EQ(h, expected) << name << ": RunMetrics digest changed.\n"
                         << "actual hash: " << h << "ull\n--- digest ---\n"
                         << text;
}

TEST(EngineGolden, PaperDefaultsPf) {
  expect_golden("defaults/pf", ClusterConfig{}, paper_workload(),
                8352626999512020346ull);
}

TEST(EngineGolden, PaperDefaultsNpf) {
  ClusterConfig cfg;
  cfg.enable_prefetch = false;
  expect_golden("defaults/npf", cfg, paper_workload(), 12699757661659115760ull);
}

TEST(EngineGolden, LowMuSweepCell) {
  expect_golden("mu=10/pf", ClusterConfig{}, paper_workload(10.0), 10574743922153874652ull);
}

TEST(EngineGolden, ZeroInterArrivalSweepCell) {
  expect_golden("ia=0/pf", ClusterConfig{}, paper_workload(1000.0, 0.0),
                14531842654691847743ull);
}

TEST(EngineGolden, SmallPrefetchSetSweepCell) {
  ClusterConfig cfg;
  cfg.prefetch_file_count = 10;
  expect_golden("k=10/pf", cfg, paper_workload(), 2283551861125005976ull);
}

TEST(EngineGolden, WebTrace) {
  workload::WebTraceConfig wcfg;
  expect_golden("web/pf", ClusterConfig{},
                workload::generate_webtrace(wcfg), 4595291922130513932ull);
}

TEST(EngineGolden, FaultsUnreplicated) {
  ClusterConfig cfg;
  cfg.fault_plan = fault::random_data_disk_failures(
      /*seed=*/1234, /*horizon_sec=*/600.0, cfg.num_storage_nodes,
      cfg.data_disks_per_node, /*count=*/4);
  expect_golden("faults=4/repl=1", cfg, paper_workload(), 6917478800865697908ull);
}

TEST(EngineGolden, FaultsReplicated) {
  ClusterConfig cfg;
  cfg.replication_degree = 2;
  cfg.fault_plan = fault::random_data_disk_failures(
      /*seed=*/1234, /*horizon_sec=*/600.0, cfg.num_storage_nodes,
      cfg.data_disks_per_node, /*count=*/4);
  expect_golden("faults=4/repl=2", cfg, paper_workload(), 2547561940436177292ull);
}

TEST(EngineGolden, OnlineAdaptation) {
  ClusterConfig cfg;
  cfg.online_popularity = true;
  expect_golden("online/pf", cfg, paper_workload(), 12890395428030156546ull);
}

TEST(EngineGolden, StripedPlacement) {
  ClusterConfig cfg;
  cfg.stripe_width = 2;
  expect_golden("stripe=2/pf", cfg, paper_workload(), 9678573239122964060ull);
}

TEST(EngineGolden, MaidBaseline) {
  ClusterConfig cfg;
  cfg.cache_policy = CachePolicy::kLruOnMiss;
  cfg.power_policy = PowerPolicy::kIdleTimer;
  cfg.enable_prefetch = false;
  expect_golden("maid", cfg, paper_workload(), 15194777051447209334ull);
}

TEST(EngineGolden, CrashRecovery) {
  // The PR-6 scenario: write-mixed workload, two crash/restart pairs,
  // replicated placement, journal on (commit).  Pins the whole recovery
  // timeline — crash-stop settlement, journal replay, replica resync,
  // prefetch re-warm, and the per-phase tick accounting.
  workload::Workload w = paper_workload();
  trace::Trace mixed;
  std::size_t i = 0;
  for (const auto& r : w.requests.records()) {
    trace::TraceRecord copy = r;
    if (++i % 4 == 0) copy.op = trace::Op::kWrite;
    mixed.append(copy);
  }
  w.requests = std::move(mixed);
  ClusterConfig cfg;
  cfg.replication_degree = 2;
  cfg.fault_plan = fault::random_crash_schedule(
      /*seed=*/2026, /*horizon_sec=*/600.0, cfg.num_storage_nodes,
      /*count=*/2, /*downtime_sec=*/30.0);
  expect_golden("crash_recovery/journal=commit", cfg, w,
                6338302244866422302ull);
}

TEST(EngineGolden, TieredRamCache) {
  // The PR-10 scenario: 512 MiB RAM tier with the TinyLFU policy over a
  // write-mixed workload.  Pins the three-tier serve path — RAM pin split
  // at prefetch time, RAM-first reads, write absorption + interval
  // flush-back — and the ramcache.* counter block.
  workload::Workload w = paper_workload();
  trace::Trace mixed;
  std::size_t i = 0;
  for (const auto& r : w.requests.records()) {
    trace::TraceRecord copy = r;
    if (++i % 4 == 0) copy.op = trace::Op::kWrite;
    mixed.append(copy);
  }
  w.requests = std::move(mixed);
  ClusterConfig cfg;
  cfg.ram_cache_bytes = 512 * kMB;
  cfg.ram_cache_policy = RamCachePolicy::kTinyLfu;
  expect_golden("ram=512mb/tinylfu", cfg, w, 17432053919728318419ull);
}

TEST(EngineGolden, ErasureCoded) {
  // The PR-7 scenario: (4,2) erasure placement under the overlapping
  // two-node outage, write-mixed workload.  Pins the k-of-n fork-join
  // (hedge launches/cancels, stragglers), degraded reads with decode
  // accounting, k-of-n write acks, and background chunk repair.
  workload::Workload w = paper_workload();
  trace::Trace mixed;
  std::size_t i = 0;
  for (const auto& r : w.requests.records()) {
    trace::TraceRecord copy = r;
    if (++i % 4 == 0) copy.op = trace::Op::kWrite;
    mixed.append(copy);
  }
  w.requests = std::move(mixed);
  ClusterConfig cfg;
  cfg.ec_n = 4;
  cfg.ec_k = 2;
  cfg.fault_plan.fail_node_pair(150.0, 2, 3, 30.0);
  expect_golden("erasure/ec=4,2", cfg, w, 14715217163273189390ull);
}

}  // namespace
}  // namespace eevfs::core
