#include "core/metadata.hpp"

#include <gtest/gtest.h>

#include "baseline/presets.hpp"
#include "core/cluster.hpp"
#include "workload/synthetic.hpp"

namespace eevfs::core {
namespace {

TEST(ServerMetadata, InsertAndLookup) {
  ServerMetadata m;
  m.insert(7, 3, 10 * kMB);
  const auto e = m.lookup(7);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->node, 3u);
  EXPECT_EQ(e->size, 10 * kMB);
  EXPECT_EQ(m.files(), 1u);
  EXPECT_EQ(m.lookups(), 1u);
  EXPECT_EQ(m.misses(), 0u);
}

TEST(ServerMetadata, MissIsCountedNotFatal) {
  ServerMetadata m;
  EXPECT_FALSE(m.lookup(42).has_value());
  EXPECT_EQ(m.misses(), 1u);
}

TEST(ServerMetadata, DuplicateInsertThrows) {
  ServerMetadata m;
  m.insert(1, 0, 1);
  EXPECT_THROW(m.insert(1, 1, 2), std::invalid_argument);
}

TEST(ServerMetadata, ErasureEntryKeepsFullSizeAndChunkHolders) {
  ServerMetadata m;
  m.insert(5, {2, 3, 4, 5}, 10 * kMB, /*erasure=*/true, /*ec_k=*/2);
  const auto e = m.lookup(5);
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(e->erasure);
  EXPECT_EQ(e->ec_k, 2u);
  // The entry records the LOGICAL size; nodes store chunk-sized images.
  EXPECT_EQ(e->size, 10 * kMB);
  ASSERT_EQ(e->replicas.size(), 4u);
  EXPECT_EQ(e->node, 2u);  // chunk 0's holder is the primary
}

TEST(ServerMetadata, ErasureInsertValidatesK) {
  ServerMetadata m;
  // k must satisfy 1 <= k < n (the chunk-holder count).
  EXPECT_THROW(m.insert(1, {0, 1, 2, 3}, kMB, true, 0),
               std::invalid_argument);
  EXPECT_THROW(m.insert(2, {0, 1, 2, 3}, kMB, true, 4),
               std::invalid_argument);
}

TEST(ServerMetadata, FootprintGrowsLinearly) {
  ServerMetadata m;
  for (trace::FileId f = 0; f < 100; ++f) m.insert(f, 0, 1);
  const Bytes small = m.memory_footprint();
  for (trace::FileId f = 100; f < 200; ++f) m.insert(f, 0, 1);
  EXPECT_EQ(m.memory_footprint(), 2 * small);
  // The paper's scalability point: coarse entries only — well under 100
  // bytes per file.
  EXPECT_LT(small / 100, 100u);
}

TEST(NodeMetadata, InsertFindUpdate) {
  NodeMetadata m;
  m.insert(5, LocalFileMeta{{1, 2}, 4 * kMB, false, 0});
  ASSERT_TRUE(m.contains(5));
  EXPECT_EQ(m.at(5).disks, (std::vector<std::size_t>{1, 2}));
  m.at(5).buffered = true;
  EXPECT_TRUE(m.at(5).buffered);
  EXPECT_EQ(m.find(99), nullptr);
  EXPECT_GE(m.lookups(), 3u);
}

TEST(NodeMetadata, DuplicateInsertThrows) {
  NodeMetadata m;
  m.insert(1, {});
  EXPECT_THROW(m.insert(1, {}), std::invalid_argument);
}

TEST(NodeMetadata, AtUnknownThrows) {
  NodeMetadata m;
  EXPECT_THROW(m.at(3), std::out_of_range);
}

TEST(NodeMetadata, IterationCoversAllFiles) {
  NodeMetadata m;
  for (trace::FileId f = 0; f < 10; ++f) {
    m.insert(f, LocalFileMeta{{f % 2}, kMB, false, 0});
  }
  std::size_t seen = 0;
  for (const auto& [f, meta] : m) {
    ++seen;
    EXPECT_EQ(meta.disks.front(), f % 2);
  }
  EXPECT_EQ(seen, 10u);
}

TEST(MetadataIntegration, ServerKnowsNodesButNotDisks) {
  // §IV-D: the server's view stops at the node granularity; only the
  // node-local metadata knows disks.
  workload::SyntheticConfig wcfg;
  wcfg.num_requests = 300;
  const auto w = workload::generate_synthetic(wcfg);
  Cluster c(baseline::eevfs_pf());
  const RunMetrics m = c.run(w);
  (void)m;
  const ServerMetadata& server_meta = c.server().metadata();
  EXPECT_EQ(server_meta.files(), wcfg.num_files);
  EXPECT_GE(server_meta.lookups(), 300u);  // one per routed request
  EXPECT_EQ(server_meta.misses(), 0u);
  // Node metadata holds each node's share.
  std::size_t local_total = 0;
  for (std::size_t n = 0; n < c.num_nodes(); ++n) {
    local_total += c.node(n).metadata().files();
  }
  EXPECT_EQ(local_total, wcfg.num_files);
  // Distributed: no single node holds everything.
  EXPECT_LT(c.node(0).metadata().files(), wcfg.num_files);
}

TEST(MetadataIntegration, LookupCostIsPaidOnEveryRequest) {
  // Metadata lookups add server CPU time; a run's mean response includes
  // at least that much over the pure network+disk floor.
  EXPECT_GT(ServerMetadata::lookup_cost(), 0);
  EXPECT_LT(ServerMetadata::lookup_cost(), milliseconds_to_ticks(1.0));
}

}  // namespace
}  // namespace eevfs::core
